// Tests for the Appendix C low-level language: hash-consed expression
// table, partial-interpretation semantics, graph construction, the
// iteration decision method, printing/parsing, and the LTL encoding —
// cross-validated against each other.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "lll/decide.h"
#include "lll/encode.h"
#include "lll/graph.h"
#include "lll/interp.h"
#include "ltl/lasso.h"
#include "ltl/tableau.h"

namespace il::lll {
namespace {

std::uint32_t sym(std::string_view name) { return SymbolTable::global().intern(name); }

bool interp_consistent(const PartialInterp& i) {
  for (const Conj& c : i) {
    if (c.contradictory) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Hash-consing and per-node metadata.
// ---------------------------------------------------------------------------

TEST(ExprTable, StructuralEqualityIsIdEquality) {
  EXPECT_EQ(lit("x"), lit("x"));
  EXPECT_NE(lit("x"), lit("x", /*negated=*/true));
  EXPECT_NE(lit("x"), lit("y"));
  EXPECT_EQ(semi(lit("x"), lit("y")), semi(lit("x"), lit("y")));
  EXPECT_NE(semi(lit("x"), lit("y")), concat(lit("x"), lit("y")));
  EXPECT_EQ(infloop(conj(lit("x"), tstar())), infloop(conj(lit("x"), tstar())));
  // Shared subtrees are shared ids: building twice does not grow the table.
  const ExprId e1 = iter_star(concat(lit("P"), tstar()), lit("Q"));
  const std::size_t size_before = ExprTable::global().size();
  const ExprId e2 = iter_star(concat(lit("P"), tstar()), lit("Q"));
  EXPECT_EQ(e1, e2);
  EXPECT_EQ(ExprTable::global().size(), size_before);
}

TEST(ExprTable, Metadata) {
  const ExprId x = lit("meta_x");
  EXPECT_TRUE(expr(x).has_finite);
  EXPECT_FALSE(expr(x).has_infinite);
  EXPECT_EQ(expr(x).depth, 1u);
  EXPECT_EQ(expr(x).free_vars, std::vector<std::uint32_t>{sym("meta_x")});

  EXPECT_TRUE(expr(tstar()).has_infinite);
  EXPECT_TRUE(expr(tstar()).has_finite);

  // infloop: all constraints infinite.
  const ExprId loop = infloop(x);
  EXPECT_FALSE(expr(loop).has_finite);
  EXPECT_TRUE(expr(loop).has_infinite);
  EXPECT_EQ(expr(loop).depth, 2u);

  // Serial composition through an infloop stays infinite-only.
  EXPECT_FALSE(expr(semi(loop, lit("meta_y"))).has_finite);
  // Choice restores finite elements.
  EXPECT_TRUE(expr(disj(loop, x)).has_finite);
  EXPECT_TRUE(expr(disj(loop, x)).has_infinite);

  // Free variables: hide binds, force constrains.
  const ExprId body = conj(lit("meta_x"), lit("meta_y"));
  EXPECT_EQ(expr(body).free_vars.size(), 2u);
  EXPECT_EQ(expr(hide("meta_x", body)).free_vars, std::vector<std::uint32_t>{sym("meta_y")});
  const auto forced = expr(force_false("meta_z", body)).free_vars;
  EXPECT_EQ(forced.size(), 3u);
  EXPECT_TRUE(std::binary_search(forced.begin(), forced.end(), sym("meta_z")));
}

// ---------------------------------------------------------------------------
// Printing: unambiguous, and parse() round-trips to the same id.
// ---------------------------------------------------------------------------

/// The A1/A2/A3 nesting family of Appendix C Section 4.5 (the nonelementary
/// blowup example measured by bench_lll_blowup):
///   A_n = infloop( iter(*)((p0 ; p0), q0) as ... as iter(*)((p_{n-1} ; p_{n-1}), q_{n-1}) )
ExprId nesting_family(int n) {
  ExprId acc = kNoExpr;
  for (int i = 0; i < n; ++i) {
    const std::string p = "p" + std::to_string(i);
    const std::string q = "q" + std::to_string(i);
    ExprId it = iter_paren(semi(lit(p), lit(p)), lit(q));
    acc = acc == kNoExpr ? it : same_len(acc, it);
  }
  return infloop(acc);
}

TEST(Print, GoldenNestingFamily) {
  EXPECT_EQ(to_string(nesting_family(1)), "infloop(iter(*)((p0 ; p0), q0))");
  EXPECT_EQ(to_string(nesting_family(2)),
            "infloop((iter(*)((p0 ; p0), q0) as iter(*)((p1 ; p1), q1)))");
  EXPECT_EQ(to_string(nesting_family(3)),
            "infloop(((iter(*)((p0 ; p0), q0) as iter(*)((p1 ; p1), q1)) as "
            "iter(*)((p2 ; p2), q2)))");
}

TEST(Print, MixedConnectivesAreParenthesized) {
  // as / concat / ; mixes must print unambiguously: the three groupings of
  // x, y, z below are distinct expressions and must render distinctly.
  const ExprId a = same_len(concat(lit("x"), lit("y")), lit("z"));
  const ExprId b = concat(lit("x"), same_len(lit("y"), lit("z")));
  const ExprId c = semi(lit("x"), same_len(lit("y"), lit("z")));
  EXPECT_EQ(to_string(a), "((x . y) as z)");
  EXPECT_EQ(to_string(b), "(x . (y as z))");
  EXPECT_EQ(to_string(c), "(x ; (y as z))");
  EXPECT_NE(to_string(a), to_string(b));
}

TEST(Print, ParseRoundTripsToSameId) {
  const std::vector<ExprId> corpus = {
      lit("x"),
      lit("x", true),
      tt(),
      ff(),
      tstar(),
      concat(lit("x"), tstar()),
      semi(tt(), lit("x")),
      same_len(concat(lit("x"), lit("y")), lit("z")),
      concat(lit("x"), same_len(lit("y"), lit("z"))),
      disj(conj(lit("a"), lit("b", true)), semi(lit("c"), lit("d"))),
      hide("x", force_false("x", semi(tt(), lit("x")))),
      force_true("w", concat(lit("v"), tstar())),
      infloop(conj(lit("x"), tstar())),
      iter_star(concat(lit("P"), tstar()), lit("Q")),
      iter_paren(semi(lit("p0"), lit("p0")), lit("q0")),
      nesting_family(1),
      nesting_family(2),
      nesting_family(3),
      starts_no_later(concat(lit("p"), tstar()), concat(lit("q"), tstar())),
      starts_no_later(concat(lit("p"), tstar()), concat(lit("q"), tstar()),
                      /*hide_markers=*/false),
  };
  for (ExprId e : corpus) {
    const std::string text = to_string(e);
    EXPECT_EQ(parse(text), e) << text;  // id equality == structural equality
  }
  // Redundant parentheses and whitespace are tolerated.
  EXPECT_EQ(parse("((x))"), lit("x"));
  EXPECT_EQ(parse("( x .  T* )"), concat(lit("x"), tstar()));
}

// ---------------------------------------------------------------------------
// Reference semantics.
// ---------------------------------------------------------------------------

TEST(Psi, Leaves) {
  auto xs = enumerate(lit("x"), 3);
  ASSERT_EQ(xs.size(), 1u);
  EXPECT_EQ(to_string(xs[0]), "x");

  auto ts = enumerate(tstar(), 3);
  EXPECT_EQ(ts.size(), 3u);  // T, T T, T T T

  auto fs = enumerate(ff(), 3);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_FALSE(interp_consistent(fs[0]));
}

TEST(Psi, ConcatOverlapsOneState) {
  // x . y : single instant with both x and y.
  auto xs = enumerate(concat(lit("x"), lit("y")), 3);
  ASSERT_EQ(xs.size(), 1u);
  EXPECT_EQ(xs[0].size(), 1u);
  EXPECT_EQ(to_string(xs[0]), "x&y");

  // x ; y : two instants.
  auto ys = enumerate(semi(lit("x"), lit("y")), 3);
  ASSERT_EQ(ys.size(), 1u);
  EXPECT_EQ(ys[0].size(), 2u);
}

TEST(Psi, ConjExtendsShorter) {
  // (x;T;T) /\ y : y constrains instant 0, length stays 3.
  auto xs = enumerate(conj(semi(lit("x"), semi(tt(), tt())), lit("y")), 4);
  ASSERT_EQ(xs.size(), 1u);
  EXPECT_EQ(xs[0].size(), 3u);
  EXPECT_EQ(xs[0][0].lits.size(), 2u);
}

TEST(Psi, AsRequiresSameLength) {
  // x as (T;T) : x has length 1, T;T length 2 — empty.
  EXPECT_TRUE(enumerate(same_len(lit("x"), semi(tt(), tt())), 4).empty());
  // (x T*) as (T;T): lengths match at 2.
  auto xs = enumerate(same_len(concat(lit("x"), tstar()), semi(tt(), tt())), 4);
  ASSERT_EQ(xs.size(), 1u);
  EXPECT_EQ(xs[0].size(), 2u);
}

TEST(Psi, ContradictionDetected) {
  auto xs = enumerate(conj(lit("x"), lit("x", true)), 2);
  ASSERT_EQ(xs.size(), 1u);
  EXPECT_FALSE(interp_consistent(xs[0]));
  EXPECT_FALSE(satisfiable_bounded(conj(lit("x"), lit("x", true)), 3));
  EXPECT_TRUE(satisfiable_bounded(conj(lit("x"), lit("y")), 3));
}

TEST(Psi, ForceAndHide) {
  // (Fx)(T;x): x false at instant 0, true at 1.
  auto xs = enumerate(force_false("x", semi(tt(), lit("x"))), 3);
  ASSERT_EQ(xs.size(), 1u);
  EXPECT_EQ(to_string(xs[0]), "!x, x");
  // Hiding erases the variable.
  auto hs = enumerate(hide("x", force_false("x", semi(tt(), lit("x")))), 3);
  ASSERT_EQ(hs.size(), 1u);
  EXPECT_EQ(to_string(hs[0]), "T, T");
}

TEST(Psi, IterStarIsIteratedPrefix) {
  // iter*(P T*, Q) == \/_i P^i ; Q  (Appendix C Section 4.3).
  auto xs = enumerate(iter_star(concat(lit("P"), tstar()), lit("Q")), 4);
  // Expected constraint sequences of length <= 4 include: Q; P,Q; P,P,Q; P,P,P,Q
  // (plus variants where trailing T* of longer P-copies pad with T —
  // all consistent).  Check the canonical ones appear.
  auto contains = [&](const std::string& repr) {
    for (const auto& i : xs) {
      if (to_string(i) == repr) return true;
    }
    return false;
  };
  EXPECT_TRUE(contains("Q"));
  EXPECT_TRUE(contains("P, Q"));
  EXPECT_TRUE(contains("P, P, Q"));
  EXPECT_TRUE(contains("P, P, P, Q"));
  for (const auto& i : xs) EXPECT_TRUE(interp_consistent(i));
}

// ---------------------------------------------------------------------------
// Graphs and the decision method.
// ---------------------------------------------------------------------------

TEST(GraphCtor, Section43Example) {
  // iter*(P T*, Q): the worked example of Section 4.3.  The reachable
  // marker construction yields the initial marker node, one spreading node,
  // and END — with P-labeled a-transitions and Q-labeled b-transitions.
  GraphBuilder builder;
  Graph g = builder.build(iter_star(concat(lit("P"), tstar()), lit("Q")));
  EXPECT_TRUE(g.has_end);
  // The marker construction yields the initial marker node, the spreading
  // node {m0 ∪ r}, and (under the relaxed marker semantics) a post-b node
  // where a stale T* tail drains; plus END.
  EXPECT_GE(g.nodes.size(), 2u);
  EXPECT_LE(g.nodes.size(), 3u);
  bool saw_p_self = false, saw_q_end = false;
  const bool* v = nullptr;
  for (const GEdge& e : g.edges) {
    const Conj prop = g.pool->prop_conj(e.prop);
    if (is_end(e.to) && (v = prop.find(sym("Q"))) != nullptr && *v) saw_q_end = true;
    if (!is_end(e.to) && (v = prop.find(sym("P"))) != nullptr && *v) saw_p_self = true;
  }
  EXPECT_TRUE(saw_p_self);
  EXPECT_TRUE(saw_q_end);
  DecisionStats stats = iterate_graph(g);
  EXPECT_TRUE(stats.satisfiable);
}

TEST(Decide, Basics) {
  EXPECT_TRUE(lll_satisfiable(lit("x")));
  EXPECT_FALSE(lll_satisfiable(ff()));
  EXPECT_FALSE(lll_satisfiable(conj(lit("x"), lit("x", true))));
  EXPECT_TRUE(lll_satisfiable(tstar()));
  EXPECT_TRUE(lll_satisfiable(infloop(lit("x"))));
  // infloop(x) /\ (T;!x): x forever clashes with !x at instant 1.
  EXPECT_FALSE(lll_satisfiable(conj(infloop(lit("x")), semi(tt(), lit("x", true)))));
}

TEST(Decide, IterStarForcesB) {
  // iter*(x T*, F): b must begin but is unsatisfiable -> whole unsat.
  EXPECT_FALSE(lll_satisfiable(iter_star(concat(lit("x"), tstar()), ff())));
  // iter(*) (no eventuality) with unsatisfiable b: may loop on a forever.
  EXPECT_TRUE(lll_satisfiable(iter_paren(concat(lit("x"), tstar()), ff())));
}

// Graph decision agrees with the bounded reference semantics on
// finite-witness expressions.
TEST(Decide, AgreesWithPsiOnFiniteWitnessCorpus) {
  const std::vector<std::pair<const char*, ExprId>> corpus = {
      {"x", lit("x")},
      {"x&!x", conj(lit("x"), lit("x", true))},
      {"x;y", semi(lit("x"), lit("y"))},
      {"x.!x", concat(lit("x"), lit("x", true))},
      {"(x T*) as (T;T)", same_len(concat(lit("x"), tstar()), semi(tt(), tt()))},
      {"x as (T;T)", same_len(lit("x"), semi(tt(), tt()))},
      {"Fx(T;x) /\\ x", conj(force_false("x", semi(tt(), lit("x"))), lit("x"))},
      {"Fx(T;x) /\\ (!x T*)",
       conj(force_false("x", semi(tt(), lit("x"))), concat(lit("x", true), tstar()))},
      {"iter*(P T*, Q)", iter_star(concat(lit("P"), tstar()), lit("Q"))},
      {"iter*(P T*, !P) /\\ infloop(P)",
       conj(iter_star(concat(lit("P"), tstar()), lit("P", true)), infloop(lit("P")))},
      {"hide x of contradiction", hide("x", conj(lit("y"), lit("y", true)))},
  };
  for (const auto& [name, e] : corpus) {
    const bool via_graph = lll_satisfiable(e);
    const bool via_psi = satisfiable_bounded(e, 5);
    // psi is bounded: it may miss long witnesses but never invents one.
    if (via_psi) {
      EXPECT_TRUE(via_graph) << name;
    }
    if (!via_graph) {
      EXPECT_FALSE(via_psi) << name;
    }
    // For this corpus the bounds are big enough that they agree exactly.
    EXPECT_EQ(via_graph, via_psi) << name;
  }
}

// ---------------------------------------------------------------------------
// LTL encoding (Section 7).
// ---------------------------------------------------------------------------

TEST(Encode, SatisfiabilityAgreesWithTableau) {
  const std::vector<std::string> corpus = {
      "p",
      "p /\\ !p",
      "[]p",
      "<>p",
      "[]p /\\ <>!p",
      "o p /\\ o !p",
      "[]p \\/ []!p",
      "SU(p, q)",
      "SU(p, q) /\\ []!q",
      "U(p, q) /\\ []!q",
      "[](p /\\ q)",
      "<>p /\\ []!p",
  };
  for (const auto& s : corpus) {
    ltl::Arena arena;
    ltl::Id f = arena.nnf(arena.parse(s));
    const bool via_tableau = ltl::satisfiable(arena, f);
    const bool via_lll = lll_satisfiable(encode_ltl(arena, f));
    EXPECT_EQ(via_tableau, via_lll) << s;
  }
}

TEST(Encode, AtomsShareTheGlobalSymbol) {
  ltl::Arena arena;
  const ltl::Id f = arena.nnf(arena.parse("[]p"));
  const ExprId e = encode_ltl(arena, f);
  // encode([]p) = infloop(p . T*): the LLL literal carries the very symbol
  // id the arena interned for "p".
  const ExprNode& loop = expr(e);
  ASSERT_EQ(loop.kind, Kind::Infloop);
  const ExprNode& cat = expr(loop.a);
  ASSERT_EQ(cat.kind, Kind::Concat);
  EXPECT_EQ(expr(cat.a).var, arena.node(arena.atom("p")).sym);
}

TEST(Encode, StartsNoLater) {
  // "a begins no later than b begins" with a = (p T*), b = (q T*).
  ExprId a = concat(lit("p"), tstar());
  ExprId b = concat(lit("q"), tstar());
  EXPECT_TRUE(lll_satisfiable(starts_no_later(a, b)));

  // With the markers left visible, pin b's start to instant 0 and force
  // a's marker off instant 0: then a must begin strictly later — the
  // ordering constraint makes the whole thing unsatisfiable.
  ExprId visible = starts_no_later(a, b, /*hide_markers=*/false);
  ExprId pin_b_first = concat(lit("__by"), tstar());          // y at instant 0
  ExprId a_not_first = concat(lit("__bx", true), tstar());    // x false at instant 0
  EXPECT_FALSE(lll_satisfiable(conj(visible, conj(pin_b_first, a_not_first))));
  // Sanity: pinning only b first stays satisfiable (simultaneous starts).
  EXPECT_TRUE(lll_satisfiable(conj(starts_no_later(a, b, false), pin_b_first)));
}

}  // namespace
}  // namespace il::lll
