// E4: the Chapter 6 self-timed request/acknowledge protocol and arbiter.
#include <gtest/gtest.h>

#include "core/check.h"
#include "engine/engine.h"
#include "systems/arbiter.h"
#include "systems/selftimed.h"

namespace il::sys {
namespace {

class SelfTimedSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SelfTimedSeeds, ProtocolSatisfiesFigure62) {
  SelfTimedRunConfig config;
  config.seed = GetParam();
  Trace tr = run_request_ack(config);
  auto r = check_spec(request_ack_spec(), tr);
  EXPECT_TRUE(r.ok) << r.to_string() << "\n" << tr.to_string();
}

TEST_P(SelfTimedSeeds, ArbiterSatisfiesFigure64) {
  ArbiterRunConfig config;
  config.seed = GetParam();
  Trace tr = run_arbiter(config);
  auto r = check_spec(arbiter_spec(), tr);
  EXPECT_TRUE(r.ok) << r.to_string();
  EXPECT_TRUE(check(arbiter_mutual_exclusion(), tr));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelfTimedSeeds, ::testing::Values(1, 2, 3, 9, 17));

TEST(SelfTimedNegative, BuggyResponderViolatesA2) {
  int violations = 0;
  for (std::uint64_t seed : {1, 2, 3, 4, 5}) {
    SelfTimedRunConfig config;
    config.seed = seed;
    Trace tr = run_request_ack_buggy(config);
    auto r = check_spec(request_ack_spec(), tr);
    if (!r.ok) ++violations;
  }
  EXPECT_GT(violations, 0);
}

TEST(ArbiterNegative, BuggyArbiterViolatesMutualExclusion) {
  int violations = 0;
  for (std::uint64_t seed : {1, 2, 3, 4, 5}) {
    ArbiterRunConfig config;
    config.seed = seed;
    Trace tr = run_arbiter_buggy(config);
    if (!check(arbiter_mutual_exclusion(), tr)) ++violations;
  }
  EXPECT_GT(violations, 0);
}

TEST(SelfTimedBasics, HandshakesActuallyHappen) {
  SelfTimedRunConfig config;
  Trace tr = run_request_ack(config);
  // Count rises of R.
  int rises = 0;
  for (std::size_t k = 1; k < tr.size(); ++k) {
    if (!tr.at(k - 1).truthy("R") && tr.at(k).truthy("R")) ++rises;
  }
  EXPECT_EQ(rises, static_cast<int>(config.handshakes));
}

TEST(SelfTimedBatch, SeedSweepThroughEngineMatchesSequential) {
  Spec spec = request_ack_spec();
  std::vector<Trace> traces;
  for (std::uint64_t seed : {1, 2, 3, 9, 17}) {
    SelfTimedRunConfig config;
    config.seed = seed;
    traces.push_back(run_request_ack(config));
    traces.push_back(run_request_ack_buggy(config));
  }
  engine::Options opts;
  opts.num_threads = 4;
  auto results = engine::check_batch(engine::jobs_for_traces(spec, traces), opts);
  ASSERT_EQ(results.size(), traces.size());
  for (std::size_t i = 0; i < traces.size(); ++i) {
    CheckResult sequential = check_spec(spec, traces[i]);
    EXPECT_EQ(results[i].ok, sequential.ok) << "trace " << i;
    EXPECT_EQ(results[i].failed, sequential.failed) << "trace " << i;
  }
}

}  // namespace
}  // namespace il::sys
