// Tests for the interval-indexed obligation graph (PR 10): the stabbing-query
// epoch invalidation must be verdict-identical to the legacy reverse walk at
// every prefix; relocating open event searches must unlink the obligation
// records they supersede (the orphan leak fixed in this PR); mark-and-sweep
// GC and settled-parent compaction may fire at arbitrary points without
// changing a single verdict; and a GC'd long-run monitor's footprint must
// plateau instead of growing with the trace.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <random>
#include <vector>

#include "core/ast.h"
#include "core/check.h"
#include "core/memo.h"
#include "core/monitor.h"
#include "engine/stream.h"
#include "systems/ab_protocol.h"
#include "systems/arbiter.h"
#include "systems/mutex.h"
#include "systems/queue_system.h"
#include "systems/selftimed.h"

namespace il {
namespace {

std::vector<std::int64_t> domain(std::size_t n) {
  std::vector<std::int64_t> d;
  for (std::size_t i = 1; i <= n; ++i) d.push_back(static_cast<std::int64_t>(i));
  return d;
}

/// The case-study corpus from tests/test_monitor_incremental.cpp, reused
/// here to compare the two invalidation strategies on realistic graphs.
struct StreamCases {
  std::deque<Spec> specs;  ///< deque: spec_of pointers survive growth
  std::vector<const Spec*> spec_of;
  std::vector<Trace> traces;

  StreamCases() {
    traces.reserve(32);

    specs.push_back(sys::mutex_spec(3));
    const Spec* mutex = &specs.back();
    for (std::uint64_t seed = 1; seed <= 2; ++seed) {
      sys::MutexRunConfig mc;
      mc.seed = seed;
      mc.entries = 4;
      add(mutex, sys::run_mutex(mc));
      add(mutex, sys::run_mutex_buggy(mc));
    }

    specs.push_back(sys::queue_spec(domain(3)));
    const Spec* queue = &specs.back();
    sys::QueueRunConfig qc;
    qc.seed = 1;
    qc.values = 3;
    add(queue, sys::run_fifo_queue(qc));
    add(queue, sys::run_swapping_queue(qc));
    add(queue, sys::run_lifo_stack(qc));

    sys::AbRunConfig ac;
    ac.seed = 7;
    specs.push_back(sys::ab_sender_spec(domain(3)));
    const Spec* ab = &specs.back();
    add(ab, sys::run_ab_protocol(ac).trace);
    add(ab, sys::run_ab_protocol_stuck_bit(ac).trace);

    specs.push_back(sys::request_ack_spec());
    const Spec* selftimed = &specs.back();
    sys::SelfTimedRunConfig sc;
    add(selftimed, sys::run_request_ack(sc));
    add(selftimed, sys::run_request_ack_buggy(sc));

    specs.push_back(sys::arbiter_spec());
    const Spec* arbiter = &specs.back();
    sys::ArbiterRunConfig arc;
    add(arbiter, sys::run_arbiter(arc));
    add(arbiter, sys::run_arbiter_buggy(arc));
  }

  void add(const Spec* spec, Trace trace) {
    traces.push_back(std::move(trace));
    spec_of.push_back(spec);
  }
};

/// One axiom whose interval start is an open forward event search that
/// relocates: the event is []q, which under stuttering extension holds from
/// the position after the *last* !q pulse onward — so every new !q pulse
/// moves the found edge forward and supersedes the previous body obligation.
/// The body <>r stays open while r never occurs.
Spec relocating_spec() {
  Spec spec;
  spec.name = "reloc";
  spec.axioms.push_back(
      {"tail", f::interval(t::fwd(t::event(f::always(f::atom("q"))), nullptr),
                           f::eventually(f::atom("r")))});
  return spec;
}

State qr(bool q, bool r) {
  State s;
  s.set_bool("q", q);
  s.set_bool("r", r);
  return s;
}

/// Satellite 1: a relocating open event find must unlink the obligation
/// record it supersedes immediately, so the graph's resident entry count
/// stays flat across arbitrarily many relocations (GC disabled: the direct
/// unlink alone must hold the line, not the sweeper).
TEST(ObligationIndex, RelocatingEventFindKeepsEntriesFlat) {
  Monitor m(relocating_spec());
  m.set_gc_fraction(0.0);
  constexpr std::size_t kTotal = 1024;
  constexpr std::size_t kPulse = 64;  // q drops every kPulse-th state
  std::vector<std::size_t> phase_entries;  // sampled at a fixed pulse phase
  for (std::size_t k = 0; k < kTotal; ++k) {
    m.append(qr(k % kPulse != kPulse - 1, false));
    if (k >= 4 * kPulse && k % kPulse == 0) {
      phase_entries.push_back(m.obligations().size());
    }
  }
  ASSERT_GE(phase_entries.size(), 8u);
  const auto [lo, hi] = std::minmax_element(phase_entries.begin(), phase_entries.end());
  // ~16 relocations happened; without the unlink each leaves an orphaned
  // body obligation behind and the count climbs monotonically.
  EXPECT_LE(*hi, *lo + 4) << "obligation entries grew across relocations";
  EXPECT_GT(m.obligations().orphan_unlinks(), 0u);
  EXPECT_GT(m.obligations().gc_freed(), 0u);  // superseded records were freed
}

/// Tentpole oracle: the stabbing-query invalidation must produce the exact
/// verdict stream of the legacy reverse walk at every prefix, on every
/// case-study spec plus the relocating one.  Where the indexed side has not
/// freed any record the dirty sets themselves must coincide (seed-set
/// equivalence), not just the verdicts.
TEST(ObligationIndex, IndexedMatchesReverseWalkAtEveryPrefix) {
  StreamCases cases;
  {
    cases.specs.push_back(relocating_spec());
    Trace t;
    for (std::size_t k = 0; k < 256; ++k) t.push(qr(k % 32 != 31, k % 97 == 96));
    cases.add(&cases.specs.back(), std::move(t));
  }
  std::size_t failing_prefixes = 0;
  for (std::size_t c = 0; c < cases.traces.size(); ++c) {
    const Spec& spec = *cases.spec_of[c];
    const Trace& run = cases.traces[c];
    Monitor indexed(spec);  // Invalidation::Indexed is the default
    Monitor legacy(spec);
    legacy.set_invalidation(ObligationGraph::Invalidation::ReverseWalk);
    for (std::size_t k = 0; k < run.size(); ++k) {
      const State& s = run.states()[k];
      const CheckResult a = indexed.append(s);
      const CheckResult b = legacy.append(s);
      ASSERT_EQ(a.ok, b.ok) << "case " << c << " prefix " << k;
      ASSERT_EQ(a.failed, b.failed) << "case " << c << " prefix " << k;
      if (indexed.obligations().gc_freed() == 0) {
        ASSERT_EQ(indexed.obligations().last_dirtied(), legacy.obligations().last_dirtied())
            << "case " << c << " prefix " << k;
      }
      failing_prefixes += a.ok ? 0 : 1;
    }
    EXPECT_GT(indexed.obligations().index_stabs(), 0u) << "case " << c;
    EXPECT_EQ(legacy.obligations().index_stabs(), 0u) << "case " << c;
    EXPECT_EQ(legacy.obligations().index_nodes(), 0u) << "case " << c;
  }
  EXPECT_GT(failing_prefixes, 0u);  // the corpus must exercise failures
}

/// The whole point of the index: an epoch touches the overlapping open
/// obligations, not the graph.  On a long steady-state stream the per-epoch
/// seed count must stay far below the population an unindexed graph carries
/// for the same stream (the reverse-walk graph reclaims nothing, so its
/// entry count is the old cost of being wrong).
TEST(ObligationIndex, EpochTouchesFarFewerThanUnindexedEntries) {
  Monitor m(relocating_spec());
  m.set_gc_fraction(0.0);
  Monitor legacy(relocating_spec());
  legacy.set_invalidation(ObligationGraph::Invalidation::ReverseWalk);
  legacy.set_gc_fraction(0.0);
  for (std::size_t k = 0; k < 2048; ++k) {
    const State s = qr(k % 64 != 63, false);
    m.append(s);
    legacy.append(s);
  }
  const ObligationGraph& g = m.obligations();
  ASSERT_GT(g.index_stabs(), 0u);
  const std::size_t avg_touched = g.touched_total() / g.index_stabs();
  EXPECT_LT(avg_touched * 20, legacy.obligations().size());
  // Reclamation keeps the indexed graph itself small: the stab could not
  // be selective if every record it ever made stayed resident.
  EXPECT_LT(g.size(), legacy.obligations().size() / 10);
  // The tree prunes: nodes visited per stab is O(log n + touched), far
  // below one visit per resident obligation per epoch.
  EXPECT_LT(g.index_visited(), g.index_stabs() * (avg_touched + 2) * 8);
}

/// Satellite 2: footprint honesty — the graph's byte gauge must cover the
/// interval-tree node pool, and the monitor's footprint must cover both
/// stores.
TEST(ObligationIndex, FootprintAccountsForIndexNodes) {
  StreamCases cases;
  Monitor m(*cases.spec_of[0]);
  for (const State& s : cases.traces[0].states()) m.append(s);
  const ObligationGraph& g = m.obligations();
  EXPECT_GT(g.index_nodes(), 0u);
  EXPECT_GE(g.bytes(), g.index_nodes() * IntervalIndex::node_bytes());
  EXPECT_GE(m.footprint_bytes(), g.bytes() + m.cache().bytes());
}

/// Satellite 3 (sequential half): a seeded randomized soak interleaving
/// appends with forced GC sweeps and settled-parent compaction, with
/// auto-GC armed at an aggressive fraction.  Verdicts must stay
/// bit-identical to a scratch monitor (which has no graph, hence no GC) at
/// every prefix, on the corpus and on the relocating spec.
TEST(ObligationIndex, SoakGcAndCompactionPreserveVerdicts) {
  std::mt19937 rng(0xC0FFEEu);
  StreamCases cases;
  {
    cases.specs.push_back(relocating_spec());
    Trace t;
    std::uniform_real_distribution<double> u(0.0, 1.0);
    for (std::size_t k = 0; k < 768; ++k) t.push(qr(u(rng) < 0.95, u(rng) < 0.02));
    cases.add(&cases.specs.back(), std::move(t));
  }
  std::uniform_int_distribution<int> maintenance(0, 9);
  std::size_t sweeps = 0;
  for (std::size_t c = 0; c < cases.traces.size(); ++c) {
    const Spec& spec = *cases.spec_of[c];
    const Trace& run = cases.traces[c];
    Monitor inc(spec);
    inc.set_gc_fraction(0.05);
    Monitor oracle(spec, {}, Monitor::Mode::Scratch);
    for (std::size_t k = 0; k < run.size(); ++k) {
      const State& s = run.states()[k];
      const CheckResult a = inc.append(s);
      oracle.observe(s);
      const CheckResult b = oracle.current();
      ASSERT_EQ(a.ok, b.ok) << "case " << c << " prefix " << k;
      ASSERT_EQ(a.failed, b.failed) << "case " << c << " prefix " << k;
      switch (maintenance(rng)) {
        case 0:
          inc.gc_obligations();
          break;
        case 1:
          inc.compact_settled();
          break;
        default:
          break;
      }
    }
    sweeps += inc.obligations().gc_sweeps();
  }
  EXPECT_GT(sweeps, 0u);
}

/// Satellite 3 (pool half): the same soak through engine::BatchMonitor at
/// pool widths 1, 2 and 4 with auto-GC armed fleet-wide — interleaved
/// incremental and scratch subscribers must agree with each other and the
/// wider pools must reproduce the width-1 verdict stream exactly.
TEST(ObligationIndex, SoakPoolWidthsAreDeterministicUnderGc) {
  std::mt19937 rng(0xB0BACAFEu);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  const Spec spec = relocating_spec();
  std::vector<State> stream;
  for (std::size_t k = 0; k < 512; ++k) stream.push_back(qr(u(rng) < 0.95, u(rng) < 0.02));

  std::vector<engine::MonitorJob> jobs;
  jobs.push_back({&spec, {}, Monitor::Mode::Incremental});
  jobs.push_back({&spec, {}, Monitor::Mode::Scratch});
  jobs.push_back({&spec, {}, Monitor::Mode::Incremental});
  jobs.push_back({&spec, {}, Monitor::Mode::Scratch});

  std::vector<std::vector<CheckResult>> reference;
  {
    engine::Options opts;
    opts.num_threads = 1;
    opts.obligation_gc_fraction = 0.05;
    engine::BatchMonitor fleet(jobs, opts);
    for (const State& s : stream) {
      const auto& v = fleet.feed(s);
      ASSERT_EQ(v.size(), jobs.size());
      for (std::size_t j = 1; j < v.size(); ++j) {
        ASSERT_EQ(v[j].ok, v[0].ok) << "job " << j;
        ASSERT_EQ(v[j].failed, v[0].failed) << "job " << j;
      }
      reference.push_back(v);
    }
  }
  for (const std::size_t threads : {2u, 4u}) {
    engine::Options opts;
    opts.num_threads = threads;
    opts.obligation_gc_fraction = 0.05;
    engine::BatchMonitor fleet(jobs, opts);
    std::size_t k = 0;
    for (const State& s : stream) {
      const auto& v = fleet.feed(s);
      for (std::size_t j = 0; j < v.size(); ++j) {
        ASSERT_EQ(v[j].ok, reference[k][j].ok) << "threads " << threads << " state " << k;
        ASSERT_EQ(v[j].failed, reference[k][j].failed) << "threads " << threads << " state " << k;
      }
      ++k;
    }
  }
}

/// Satellite 3 (footprint half): with the settled cache capped and GC
/// armed, a long-lived monitor's evaluation-store footprint plateaus — the
/// max over the final quarter of the run stays within 1.5x the max over the
/// second quarter, instead of tracking the trace length.
TEST(ObligationIndex, FootprintPlateausUnderGc) {
  std::mt19937 rng(7u);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  Monitor m(relocating_spec());
  m.set_cache_capacity(1024);
  m.set_gc_fraction(0.25);
  constexpr std::size_t kTotal = 4096;
  std::vector<std::size_t> footprint;
  footprint.reserve(kTotal);
  for (std::size_t k = 0; k < kTotal; ++k) {
    m.append(qr(u(rng) < 0.95, u(rng) < 0.02));
    if (k % 257 == 256) m.gc_obligations();
    footprint.push_back(m.footprint_bytes());
  }
  const auto quarter_max = [&](std::size_t q) {
    const std::size_t lo = q * kTotal / 4;
    const std::size_t hi = (q + 1) * kTotal / 4;
    return *std::max_element(footprint.begin() + lo, footprint.begin() + hi);
  };
  const std::size_t second = quarter_max(1);
  const std::size_t last = quarter_max(3);
  EXPECT_LE(last, second + second / 2) << "footprint still growing after 4x the states";
  EXPECT_GT(m.obligations().gc_sweeps(), 0u);
}

}  // namespace
}  // namespace il
