// Differential determinism suite for intra-decision parallelism: lending a
// ParallelFor to a single decision's internal frontiers — tableau expansion
// waves, the per-eventuality deletion sweeps, and the LLL subset-construction
// waves — must be invisible in every output.  Graphs, NodeId sequences,
// verdicts, and every per-job counter are compared bit-for-bit at widths
// 1/2/4, directly against the layer APIs and through the engine job path
// (including under an outer 2-thread BatchDecider), on the PR 3 seeded
// 40-formula corpus, the A1/A2/A3 nesting family, and the blowup cases.
// Budget exceptions raised mid-build must carry the same message either way.
#include <gtest/gtest.h>

#include <atomic>
#include <exception>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "engine/decision.h"
#include "lll/decide.h"
#include "lll/encode.h"
#include "lll/graph.h"
#include "ltl/formula.h"
#include "ltl/tableau.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace il {
namespace {

using lll::GraphBuilder;

// ---------------------------------------------------------------------------
// A std::thread-backed ParallelFor with run_claimed()'s contract: every index
// exactly once, exceptions propagate (lowest worker slot wins).  This is the
// "tests can bind a plain std::thread fan-out" binding util/parallel.h
// promises, so the layer APIs are exercised without the engine pool.
// ---------------------------------------------------------------------------
util::ParallelFor thread_fan(std::size_t width) {
  util::ParallelFor par;
  par.width = width;
  par.run = [width](std::size_t count, const std::function<void(std::size_t)>& item) {
    std::atomic<std::size_t> next{0};
    std::vector<std::exception_ptr> errors(width);
    auto work = [&](std::size_t slot) {
      try {
        for (std::size_t i = next.fetch_add(1); i < count; i = next.fetch_add(1)) {
          item(i);
        }
      } catch (...) {
        errors[slot] = std::current_exception();
      }
    };
    std::vector<std::thread> helpers;
    for (std::size_t w = 1; w < width; ++w) helpers.emplace_back(work, w);
    work(0);
    for (auto& t : helpers) t.join();
    for (const auto& e : errors) {
      if (e) std::rethrow_exception(e);
    }
  };
  return par;
}

// ---------------------------------------------------------------------------
// Corpora: the PR 3 seeded random formulas, the Section 4.5 nesting family,
// and the two blowup shapes from bench_lll_blowup.
// ---------------------------------------------------------------------------

/// The seeded corpus generator of tests/test_cross_decision.cpp and
/// tests/test_graph_substrate.cpp — same shape, same seed.
ltl::Id random_formula(ltl::Arena& arena, Rng& rng, int depth) {
  const char* atoms[] = {"p", "q", "r"};
  if (depth == 0 || rng.chance(0.25)) {
    const char* name = atoms[rng.below(3)];
    return rng.chance(0.5) ? arena.atom(name) : arena.neg_atom(name);
  }
  switch (rng.below(7)) {
    case 0:
      return arena.mk_and(random_formula(arena, rng, depth - 1),
                          random_formula(arena, rng, depth - 1));
    case 1:
      return arena.mk_or(random_formula(arena, rng, depth - 1),
                         random_formula(arena, rng, depth - 1));
    case 2:
      return arena.mk_next(random_formula(arena, rng, depth - 1));
    case 3:
      return arena.mk_always(random_formula(arena, rng, depth - 1));
    case 4:
      return arena.mk_eventually(random_formula(arena, rng, depth - 1));
    case 5:
      return arena.mk_until(random_formula(arena, rng, depth - 1),
                            random_formula(arena, rng, depth - 1));
    default:
      return arena.mk_strong_until(random_formula(arena, rng, depth - 1),
                                   random_formula(arena, rng, depth - 1));
  }
}

bool lll_feasible(lll::ExprId e) {
  try {
    GraphBuilder probe(/*edge_budget=*/20000);
    probe.build(e);
    return true;
  } catch (const std::invalid_argument&) {
    return false;
  }
}

/// A_n = infloop( iter(*)((p0 ; p0), q0) as ... ) — bench_lll_blowup's
/// A1/A2/A3 nonelementary family.
lll::ExprId nesting_family(int n) {
  lll::ExprId acc = lll::kNoExpr;
  for (int i = 0; i < n; ++i) {
    const std::string p = "p" + std::to_string(i);
    const std::string q = "q" + std::to_string(i);
    lll::ExprId it = lll::iter_paren(lll::semi(lll::lit(p), lll::lit(p)), lll::lit(q));
    acc = acc == lll::kNoExpr ? it : lll::same_len(acc, it);
  }
  return lll::infloop(acc);
}

/// iter* nesting in the first argument — the prefix-product stress shape.
lll::ExprId deep_first_arg(int n) {
  lll::ExprId a = lll::concat(lll::lit("p"), lll::tstar());
  for (int i = 0; i < n; ++i) {
    a = lll::iter_paren(a, lll::concat(lll::lit("q" + std::to_string(i)), lll::tstar()));
  }
  return a;
}

/// /\_{i<n} [](p_i -> <>q_i): the deep tableau case (bench_response_chain).
std::string response_chain(int n) {
  std::string out;
  for (int i = 0; i < n; ++i) {
    if (i) out += " /\\ ";
    out += "[](p" + std::to_string(i) + " -> <>q" + std::to_string(i) + ")";
  }
  return out;
}

std::vector<lll::ExprId> lll_corpus() {
  ltl::Arena arena;
  Rng rng(0xC0FFEE);
  std::vector<lll::ExprId> exprs;
  int candidates = 0;
  while (exprs.size() < 40 && candidates < 400) {
    ++candidates;
    const ltl::Id f = random_formula(arena, rng, 3);
    const lll::ExprId encoded = lll::encode_ltl(arena, arena.nnf(f));
    if (!lll_feasible(encoded)) continue;
    exprs.push_back(encoded);
  }
  for (int n = 1; n <= 3; ++n) exprs.push_back(nesting_family(n));
  exprs.push_back(deep_first_arg(1));
  exprs.push_back(deep_first_arg(2));
  return exprs;
}

// ---------------------------------------------------------------------------
// LLL layer: the subset construction must intern the same NodeIds in the
// same order at any width.  Graph::to_string() renders nodes (by id, with
// their basis spans), the initial node, and every edge in emission order,
// so string equality is bit-identity of the whole graph.
// ---------------------------------------------------------------------------
TEST(IntraDecision, LllGraphsBitIdenticalAcrossWidths) {
  const auto exprs = lll_corpus();
  ASSERT_GE(exprs.size(), 45u) << "corpus generator starved";
  const util::ParallelFor fan2 = thread_fan(2);
  const util::ParallelFor fan4 = thread_fan(4);

  std::size_t parallel_waves = 0;
  for (std::size_t i = 0; i < exprs.size(); ++i) {
    GraphBuilder serial;
    const lll::Graph ref = serial.build(exprs[i]);
    const auto ref_stats = serial.iter_stats();

    for (const util::ParallelFor* par : {&fan2, &fan4}) {
      GraphBuilder wide;
      wide.set_parallel(par);
      const lll::Graph got = wide.build(exprs[i]);

      EXPECT_EQ(got.to_string(), ref.to_string())
          << "expr " << i << " width " << par->width;
      EXPECT_EQ(got.nodes, ref.nodes) << "expr " << i;
      EXPECT_EQ(got.init, ref.init) << "expr " << i;
      ASSERT_EQ(got.edges.size(), ref.edges.size()) << "expr " << i;

      // The wave/frontier/prefix counters are part of the deterministic
      // contract too: DecisionResult caches them, so they must not depend
      // on scheduling.
      const auto& ws = wide.iter_stats();
      EXPECT_EQ(ws.waves, ref_stats.waves) << "expr " << i;
      EXPECT_EQ(ws.frontier_sets, ref_stats.frontier_sets) << "expr " << i;
      EXPECT_EQ(ws.choice_tuples, ref_stats.choice_tuples) << "expr " << i;
      EXPECT_EQ(ws.prefix_hits, ref_stats.prefix_hits) << "expr " << i;
      EXPECT_EQ(ws.prefix_misses, ref_stats.prefix_misses) << "expr " << i;
      parallel_waves += ws.waves;
    }
  }
  // The corpus must actually exercise multi-wave builds, or width-invariance
  // proves little.
  EXPECT_GT(parallel_waves, 0u);
}

// ---------------------------------------------------------------------------
// Tableau layer: node labels, edge wiring, and the deletion fixpoint must be
// identical at any width — compared structurally, edge by edge.
// ---------------------------------------------------------------------------
TEST(IntraDecision, TableauGraphsBitIdenticalAcrossWidths) {
  std::vector<std::string> texts = {response_chain(1), response_chain(2),
                                    response_chain(3),
                                    "U(p0, U(p1, U(p2, q)))",
                                    "[](p -> <>q) /\\ <>p /\\ []!q"};
  {
    ltl::Arena gen;
    Rng rng(0xC0FFEE);
    for (int i = 0; i < 10; ++i) {
      texts.push_back(gen.to_string(random_formula(gen, rng, 3)));
    }
  }
  const util::ParallelFor fan2 = thread_fan(2);
  const util::ParallelFor fan4 = thread_fan(4);

  for (std::size_t c = 0; c < texts.size(); ++c) {
    ltl::Arena arena;
    const ltl::Id f = arena.nnf(arena.parse(texts[c]));

    ltl::Tableau ref(arena, f);
    const bool ref_sat = ref.iterate();

    for (const util::ParallelFor* par : {&fan2, &fan4}) {
      ltl::Tableau got(arena, f, par);

      // Identical construction: same nodes in the same order with the same
      // labels, same edge sequence with the same endpoints and payloads.
      ASSERT_EQ(got.node_count(), ref.node_count()) << texts[c];
      ASSERT_EQ(got.edge_count(), ref.edge_count()) << texts[c];
      EXPECT_EQ(got.initial_nodes(), ref.initial_nodes()) << texts[c];
      for (std::size_t n = 0; n < ref.node_count(); ++n) {
        EXPECT_EQ(got.nodes()[n].label, ref.nodes()[n].label)
            << texts[c] << " node " << n;
        EXPECT_EQ(got.nodes()[n].out, ref.nodes()[n].out) << texts[c] << " node " << n;
        EXPECT_EQ(got.nodes()[n].in, ref.nodes()[n].in) << texts[c] << " node " << n;
      }
      for (std::size_t e = 0; e < ref.edge_count(); ++e) {
        EXPECT_EQ(got.edges()[e].from, ref.edges()[e].from) << texts[c] << " edge " << e;
        EXPECT_EQ(got.edges()[e].to, ref.edges()[e].to) << texts[c] << " edge " << e;
        EXPECT_EQ(got.edges()[e].lits, ref.edges()[e].lits) << texts[c] << " edge " << e;
        EXPECT_EQ(got.edges()[e].evs, ref.edges()[e].evs) << texts[c] << " edge " << e;
      }
      EXPECT_EQ(got.wave_count(), ref.wave_count()) << texts[c];
      EXPECT_EQ(got.frontier_set_count(), ref.frontier_set_count()) << texts[c];

      // Identical deletion fixpoint: verdict and every alive flag.
      EXPECT_EQ(got.iterate(par), ref_sat) << texts[c];
      for (std::size_t n = 0; n < ref.node_count(); ++n) {
        EXPECT_EQ(got.nodes()[n].alive, ref.nodes()[n].alive)
            << texts[c] << " node " << n;
      }
      for (std::size_t e = 0; e < ref.edge_count(); ++e) {
        EXPECT_EQ(got.edges()[e].alive, ref.edges()[e].alive)
            << texts[c] << " edge " << e;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Engine path: Options::intra_decision_threads at 1/2/4, alone and under an
// outer 2-thread BatchDecider fan-out, must reproduce the inline run's
// DecisionResults field-for-field — counters included, since the cache
// stores them.
// ---------------------------------------------------------------------------
std::vector<engine::DecisionJob> engine_corpus(ltl::Arena& arena) {
  std::vector<engine::DecisionJob> jobs;
  Rng rng(0xC0FFEE);
  int candidates = 0;
  std::size_t pairs = 0;
  while (pairs < 40 && candidates < 400) {
    ++candidates;
    const ltl::Id f = random_formula(arena, rng, 3);
    const ltl::Id nnf = arena.nnf(f);
    const lll::ExprId encoded = lll::encode_ltl(arena, nnf);
    if (!lll_feasible(encoded)) continue;
    ++pairs;
    jobs.push_back(engine::tableau_sat_job(arena, nnf));
    jobs.push_back(engine::lll_sat_job(encoded));
  }
  for (int n = 1; n <= 3; ++n) jobs.push_back(engine::lll_sat_job(nesting_family(n)));
  jobs.push_back(engine::lll_sat_job(deep_first_arg(2)));
  jobs.push_back(engine::tableau_sat_job(arena, arena.nnf(arena.parse(response_chain(3)))));
  return jobs;
}

void expect_same_results(const std::vector<engine::DecisionResult>& got,
                         const std::vector<engine::DecisionResult>& ref,
                         const std::string& what) {
  ASSERT_EQ(got.size(), ref.size()) << what;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(got[i].verdict, ref[i].verdict) << what << " job " << i;
    EXPECT_EQ(got[i].graph_nodes, ref[i].graph_nodes) << what << " job " << i;
    EXPECT_EQ(got[i].graph_edges, ref[i].graph_edges) << what << " job " << i;
    EXPECT_EQ(got[i].alive_nodes, ref[i].alive_nodes) << what << " job " << i;
    EXPECT_EQ(got[i].alive_edges, ref[i].alive_edges) << what << " job " << i;
    EXPECT_EQ(got[i].iterations, ref[i].iterations) << what << " job " << i;
    EXPECT_EQ(got[i].waves, ref[i].waves) << what << " job " << i;
    EXPECT_EQ(got[i].frontier_sets, ref[i].frontier_sets) << what << " job " << i;
    EXPECT_EQ(got[i].sweep_tasks, ref[i].sweep_tasks) << what << " job " << i;
    EXPECT_EQ(got[i].prefix_hits, ref[i].prefix_hits) << what << " job " << i;
    EXPECT_EQ(got[i].prefix_misses, ref[i].prefix_misses) << what << " job " << i;
  }
}

TEST(IntraDecision, EnginePathBitIdenticalUnderInnerAndOuterFanOut) {
  ltl::Arena arena;
  const auto jobs = engine_corpus(arena);
  ASSERT_GE(jobs.size(), 85u) << "corpus generator starved";

  engine::Options inline_opts;
  inline_opts.num_threads = 1;
  inline_opts.intra_decision_threads = 1;
  const auto reference = engine::decide_batch(jobs, inline_opts);

  for (const std::size_t outer : {1u, 2u}) {
    for (const std::size_t intra : {2u, 4u}) {
      engine::Options opts;
      opts.num_threads = outer;
      opts.intra_decision_threads = intra;
      engine::BatchDecider decider(opts);
      const auto results = decider.run(jobs);
      expect_same_results(results, reference,
                          "outer=" + std::to_string(outer) +
                              " intra=" + std::to_string(intra));
      // The stats surface reports the lent width and the work units the
      // frontiers could fan (all deterministic, summed over the run).
      EXPECT_EQ(decider.stats().intra.threads, intra);
      EXPECT_GT(decider.stats().intra.waves, 0u);
      EXPECT_GT(decider.stats().intra.frontier_sets, 0u);
      EXPECT_GT(decider.stats().intra.sweep_tasks, 0u);
      // deep_first_arg(2) is in the corpus, so the prefix-product memo must
      // have fired.
      EXPECT_GT(decider.stats().intra.prefix_hits, 0u);
    }
  }
}

// ---------------------------------------------------------------------------
// Budget guard: the edge/byte budgets must still trip under a parallel
// build, reporting both counts — with the same message as the inline build,
// since emission (where the budget is charged) stays sequential.
// ---------------------------------------------------------------------------
TEST(IntraDecision, BudgetExceptionsSurviveParallelWaves) {
  const util::ParallelFor fan4 = thread_fan(4);

  // deep_first_arg(2) builds ~18k edges over ten waves, so a 2000-edge
  // budget trips while the parallel expansion phase is genuinely active.
  const lll::ExprId big = deep_first_arg(2);
  std::string serial_msg;
  try {
    GraphBuilder tight(/*edge_budget=*/2000);
    tight.build(big);
    FAIL() << "edge budget did not trip inline";
  } catch (const std::invalid_argument& err) {
    serial_msg = err.what();
  }
  EXPECT_NE(serial_msg.find("edges="), std::string::npos) << serial_msg;
  EXPECT_NE(serial_msg.find("payload_bytes="), std::string::npos) << serial_msg;
  EXPECT_NE(serial_msg.find("/2000"), std::string::npos) << serial_msg;

  try {
    GraphBuilder tight(/*edge_budget=*/2000);
    tight.set_parallel(&fan4);
    tight.build(big);
    FAIL() << "edge budget did not trip at width 4";
  } catch (const std::invalid_argument& err) {
    EXPECT_EQ(std::string(err.what()), serial_msg);
  }

  // The byte budget too, through the engine's intra path: a tiny payload
  // budget trips identically at width 1 and width 4.
  for (const util::ParallelFor* par : {static_cast<const util::ParallelFor*>(nullptr), &fan4}) {
    GraphBuilder tight(/*edge_budget=*/1u << 30, /*payload_byte_budget=*/16);
    if (par != nullptr) tight.set_parallel(par);
    try {
      tight.build(big);
      FAIL() << "payload-byte budget did not trip";
    } catch (const std::invalid_argument& err) {
      const std::string msg = err.what();
      EXPECT_NE(msg.find("payload_bytes="), std::string::npos) << msg;
      EXPECT_NE(msg.find("/16"), std::string::npos) << msg;
    }
  }
}

}  // namespace
}  // namespace il
