// Unit tests for states, traces, stuttering extension, and TraceBuilder.
#include <gtest/gtest.h>

#include "trace/trace.h"

namespace il {
namespace {

TEST(State, DefaultsToZero) {
  State s;
  EXPECT_EQ(s.get("x"), 0);
  EXPECT_FALSE(s.truthy("x"));
}

TEST(State, SetAndGet) {
  State s;
  s.set("x", 42);
  s.set_bool("b", true);
  EXPECT_EQ(s.get("x"), 42);
  EXPECT_TRUE(s.truthy("b"));
}

TEST(State, EqualityAndOrdering) {
  State a, b;
  a.set("x", 1);
  b.set("x", 1);
  EXPECT_EQ(a, b);
  b.set("y", 2);
  EXPECT_NE(a, b);
  EXPECT_TRUE(a < b || b < a);
}

TEST(State, ToStringIsDeterministic) {
  State s;
  s.set("b", 2);
  s.set("a", 1);
  EXPECT_EQ(s.to_string(), "{a=1, b=2}");
}

TEST(Trace, StutteringExtension) {
  Trace tr;
  State s0, s1;
  s0.set("x", 0);
  s1.set("x", 7);
  tr.push(s0);
  tr.push(s1);
  EXPECT_EQ(tr.size(), 2u);
  EXPECT_EQ(tr.at(0).get("x"), 0);
  EXPECT_EQ(tr.at(1).get("x"), 7);
  // Indices past the end read the final state forever.
  EXPECT_EQ(tr.at(2).get("x"), 7);
  EXPECT_EQ(tr.at(1000).get("x"), 7);
}

TEST(Trace, EmptyTraceAccessThrows) {
  Trace tr;
  EXPECT_THROW(tr.at(0), std::invalid_argument);
  EXPECT_THROW(tr.back(), std::invalid_argument);
  EXPECT_THROW(tr.last_index(), std::invalid_argument);
}

TEST(TraceBuilder, CommitsSnapshots) {
  TraceBuilder tb;
  tb.set("x", 1);
  tb.commit();
  tb.set("x", 2);
  tb.commit();
  const Trace& tr = tb.trace();
  ASSERT_EQ(tr.size(), 2u);
  EXPECT_EQ(tr.at(0).get("x"), 1);
  EXPECT_EQ(tr.at(1).get("x"), 2);
}

TEST(TraceBuilder, SnapshotsAreIndependent) {
  TraceBuilder tb;
  tb.set("x", 1);
  tb.commit();
  tb.set("x", 2);  // not yet committed
  EXPECT_EQ(tb.trace().at(0).get("x"), 1);
}

TEST(TraceBuilder, StepHelper) {
  TraceBuilder tb;
  tb.step([](State& s) { s.set("y", 5); });
  EXPECT_EQ(tb.trace().at(0).get("y"), 5);
}

TEST(Trace, AppendDeltaNotification) {
  // The append-delta view: push() ticks appends() under an unchanged
  // stable_id(), while the memoization identity id() still refreshes.
  Trace tr;
  const std::uint32_t lineage = tr.stable_id();
  const std::uint32_t id0 = tr.id();
  EXPECT_EQ(tr.appends(), 0u);
  EXPECT_EQ(tr.rewrites(), 0u);

  State s;
  s.set("x", 1);
  tr.push(s);
  tr.push(s);
  EXPECT_EQ(tr.stable_id(), lineage);
  EXPECT_NE(tr.id(), id0);
  EXPECT_EQ(tr.appends(), 2u);
  EXPECT_EQ(tr.rewrites(), 0u);

  // In-place mutation is the other kind of delta: rewrites() ticks and
  // append-only reasoning is off.
  tr.back_mut().set("x", 9);
  EXPECT_EQ(tr.rewrites(), 1u);
  tr.state_mut(0).set("x", 3);
  EXPECT_EQ(tr.rewrites(), 2u);
  EXPECT_EQ(tr.stable_id(), lineage);

  // Copies are a fresh lineage with fresh counters; moves keep both.
  Trace copy = tr;
  EXPECT_NE(copy.stable_id(), lineage);
  EXPECT_EQ(copy.appends(), 0u);
  EXPECT_EQ(copy.rewrites(), 0u);
  Trace moved = std::move(tr);
  EXPECT_EQ(moved.stable_id(), lineage);
  EXPECT_EQ(moved.appends(), 2u);
  EXPECT_EQ(moved.rewrites(), 2u);
}

}  // namespace
}  // namespace il
