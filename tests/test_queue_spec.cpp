// E3: the Chapter 5 queue specifications checked against conforming and
// deliberately broken simulators, swept over seeds.
#include <gtest/gtest.h>

#include "core/check.h"
#include "engine/engine.h"
#include "systems/queue_system.h"

namespace il::sys {
namespace {

std::vector<std::int64_t> domain(std::size_t n) {
  std::vector<std::int64_t> d;
  for (std::size_t i = 1; i <= n; ++i) d.push_back(static_cast<std::int64_t>(i));
  return d;
}

class QueueSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QueueSeeds, FifoSatisfiesQueueSpec) {
  QueueRunConfig config;
  config.seed = GetParam();
  Trace tr = run_fifo_queue(config);
  auto r = check_spec(queue_spec(domain(config.values)), tr);
  EXPECT_TRUE(r.ok) << r.to_string();
}

TEST_P(QueueSeeds, LifoSatisfiesStackSpec) {
  QueueRunConfig config;
  config.seed = GetParam();
  Trace tr = run_lifo_stack(config);
  auto r = check_spec(stack_spec(domain(config.values)), tr);
  EXPECT_TRUE(r.ok) << r.to_string();
}

TEST_P(QueueSeeds, UnreliableQueueSatisfiesFigure51) {
  UnreliableQueueRunConfig config;
  config.seed = GetParam();
  Trace tr = run_unreliable_queue(config);
  auto r = check_spec(unreliable_queue_spec(domain(config.values)), tr);
  EXPECT_TRUE(r.ok) << r.to_string();
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueueSeeds, ::testing::Values(1, 2, 3, 7, 11, 42));

TEST(QueueNegative, SwappingQueueViolatesFifo) {
  // The pair-swapping queue must violate the FIFO axiom on at least some
  // seeds (whenever a swap actually occurs).
  int violations = 0;
  for (std::uint64_t seed : {1, 2, 3, 4, 5}) {
    QueueRunConfig config;
    config.seed = seed;
    Trace tr = run_swapping_queue(config);
    if (!check_spec(queue_spec(domain(config.values)), tr).ok) ++violations;
  }
  EXPECT_GT(violations, 0);
}

TEST(QueueNegative, LifoViolatesQueueSpec) {
  int violations = 0;
  for (std::uint64_t seed : {1, 2, 3, 4, 5}) {
    QueueRunConfig config;
    config.seed = seed;
    Trace tr = run_lifo_stack(config);
    if (!check_spec(queue_spec(domain(config.values)), tr).ok) ++violations;
  }
  EXPECT_GT(violations, 0);
}

TEST(QueueNegative, FifoViolatesStackSpec) {
  int violations = 0;
  for (std::uint64_t seed : {1, 2, 3, 4, 5}) {
    QueueRunConfig config;
    config.seed = seed;
    Trace tr = run_fifo_queue(config);
    if (!check_spec(stack_spec(domain(config.values)), tr).ok) ++violations;
  }
  EXPECT_GT(violations, 0);
}

TEST(QueueBasics, TracesAreNonTrivial) {
  QueueRunConfig config;
  Trace tr = run_fifo_queue(config);
  EXPECT_GT(tr.size(), 10u);
}

TEST(QueueBatch, MixedRunsThroughEngineMatchSequential) {
  // FIFO, LIFO, and swapping runs checked against the queue spec in one
  // batch: the engine must reproduce the sequential verdicts (conforming /
  // violating) per trace, in order.
  QueueRunConfig config;
  config.values = 5;
  Spec spec = queue_spec(domain(config.values));
  std::vector<Trace> traces;
  for (std::uint64_t seed : {1, 2, 3}) {
    config.seed = seed;
    traces.push_back(run_fifo_queue(config));
    traces.push_back(run_lifo_stack(config));
    traces.push_back(run_swapping_queue(config));
  }
  engine::Options opts;
  opts.num_threads = 3;
  auto results = engine::check_batch(engine::jobs_for_traces(spec, traces), opts);
  ASSERT_EQ(results.size(), traces.size());
  for (std::size_t i = 0; i < traces.size(); ++i) {
    CheckResult sequential = check_spec(spec, traces[i]);
    EXPECT_EQ(results[i].ok, sequential.ok) << "trace " << i;
    EXPECT_EQ(results[i].failed, sequential.failed) << "trace " << i;
  }
}

}  // namespace
}  // namespace il::sys
