// Tests for the engine's decision-job family (engine/decision.h): verdict
// correctness through the batch path, input-ordered determinism across
// thread counts, stats aggregation, and precondition errors.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "engine/decision.h"
#include "lll/encode.h"
#include "ltl/formula.h"

namespace il::engine {
namespace {

std::vector<DecisionJob> mixed_jobs(ltl::Arena& arena) {
  const std::vector<std::string> sat_corpus = {
      "p", "[]p", "<>p", "[]p /\\ <>!p", "U(p,q) /\\ []!q", "SU(p,q) /\\ []!q",
      "<>[]p", "[](p -> <>q)", "o o p /\\ []!p",
  };
  const std::vector<std::string> valid_corpus = {
      "[]p -> p", "(<>[]p) -> ([]<>p)", "SU(p,q) -> <>q", "p -> []p",
  };
  std::vector<DecisionJob> jobs;
  for (const auto& s : sat_corpus) {
    const ltl::Id f = arena.parse(s);
    jobs.push_back(tableau_sat_job(arena, f));
    jobs.push_back(lll_sat_job(lll::encode_ltl(arena, arena.nnf(f))));
  }
  for (const auto& s : valid_corpus) jobs.push_back(tableau_valid_job(arena, arena.parse(s)));
  return jobs;
}

TEST(DecisionEngine, MatchesSequentialAndIsThreadCountInvariant) {
  ltl::Arena arena;
  const std::vector<DecisionJob> jobs = mixed_jobs(arena);

  std::vector<DecisionResult> sequential;
  sequential.reserve(jobs.size());
  for (const DecisionJob& j : jobs) sequential.push_back(run_decision_job(j));

  for (std::size_t threads : {1u, 2u, 4u}) {
    Options options;
    options.num_threads = threads;
    BatchDecider decider(options);
    const auto results = decider.run(jobs);
    ASSERT_EQ(results.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      EXPECT_EQ(results[i].verdict, sequential[i].verdict) << "job " << i;
      EXPECT_EQ(results[i].graph_nodes, sequential[i].graph_nodes) << "job " << i;
      EXPECT_EQ(results[i].graph_edges, sequential[i].graph_edges) << "job " << i;
      EXPECT_EQ(results[i].alive_nodes, sequential[i].alive_nodes) << "job " << i;
      EXPECT_EQ(results[i].alive_edges, sequential[i].alive_edges) << "job " << i;
    }
    EXPECT_EQ(decider.stats().jobs, jobs.size());
  }
}

TEST(DecisionEngine, VerdictsAreCorrect) {
  ltl::Arena arena;
  std::vector<DecisionJob> jobs = {
      tableau_valid_job(arena, arena.parse("[]p -> p")),        // valid
      tableau_valid_job(arena, arena.parse("p -> []p")),        // not valid
      tableau_sat_job(arena, arena.parse("p -> []p")),          // satisfiable
      tableau_sat_job(arena, arena.parse("[]p /\\ <>!p")),      // unsat
      lll_sat_job(lll::encode_ltl(arena, arena.nnf(arena.parse("<>p")))),       // sat
      lll_sat_job(lll::encode_ltl(arena, arena.nnf(arena.parse("p /\\ !p")))),  // unsat
  };
  const auto results = decide_batch(jobs);
  ASSERT_EQ(results.size(), 6u);
  EXPECT_TRUE(results[0].verdict);
  EXPECT_FALSE(results[1].verdict);
  EXPECT_TRUE(results[2].verdict);
  EXPECT_FALSE(results[3].verdict);
  EXPECT_TRUE(results[4].verdict);
  EXPECT_FALSE(results[5].verdict);
  // Graph sizes are reported per job.  Job 0's tableau is the graph of
  // []p /\ !p — propositionally contradictory in every expansion, so the
  // graph is legitimately empty; the rest are non-trivial.
  EXPECT_EQ(results[0].graph_nodes, 0u);
  for (std::size_t i = 1; i < results.size(); ++i) EXPECT_GT(results[i].graph_nodes, 0u);
}

TEST(DecisionEngine, StatsCountJobFamilies) {
  ltl::Arena arena;
  BatchDecider decider;
  const std::vector<DecisionJob> jobs = {
      tableau_sat_job(arena, arena.parse("[]p")),
      lll_sat_job(lll::encode_ltl(arena, arena.nnf(arena.parse("[]p")))),
      tableau_valid_job(arena, arena.parse("[]p -> p")),
  };
  decider.run(jobs);
  EXPECT_EQ(decider.stats().jobs, 3u);
  EXPECT_EQ(decider.stats().tableau_jobs, 2u);
  EXPECT_EQ(decider.stats().lll_jobs, 1u);
  EXPECT_GT(decider.stats().graph_nodes, 0u);
  EXPECT_GT(decider.stats().graph_edges, 0u);
}

TEST(DecisionEngine, UnboundJobsThrow) {
  DecisionJob tableau_unbound;  // no arena
  EXPECT_THROW(run_decision_job(tableau_unbound), std::invalid_argument);
  DecisionJob lll_unbound;
  lll_unbound.kind = DecisionJob::Kind::LllSat;
  EXPECT_THROW(run_decision_job(lll_unbound), std::invalid_argument);
  // Through a batch, the error surfaces on the calling thread.
  EXPECT_THROW(decide_batch({tableau_unbound}), std::invalid_argument);
}

}  // namespace
}  // namespace il::engine
