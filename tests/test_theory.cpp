// Tests for the specialized-theory layer: linear constraints,
// Fourier-Motzkin, and the combined decision procedures (Algorithms A and B
// of Appendix B).
#include <gtest/gtest.h>

#include "ltl/tableau.h"
#include "theory/combined.h"
#include "theory/linear.h"
#include "theory/oracle.h"

namespace il::theory {
namespace {

LinearConstraint lc(const std::string& s) {
  auto c = parse_linear(s);
  EXPECT_TRUE(c.has_value()) << s;
  return *c;
}

TEST(Linear, ParsesConstraints) {
  auto c = lc("x - 2*y <= 7");
  EXPECT_EQ(c.coeffs.at("x"), 1);
  EXPECT_EQ(c.coeffs.at("y"), -2);
  EXPECT_EQ(c.constant, 7);
  EXPECT_EQ(c.rel, Rel::Le);

  auto e = lc("y = z + z");
  EXPECT_EQ(e.coeffs.at("y"), 1);
  EXPECT_EQ(e.coeffs.at("z"), -2);
  EXPECT_EQ(e.rel, Rel::Eq);
  EXPECT_EQ(e.constant, 0);

  // >= normalizes to <= with flipped signs.
  auto g = lc("a >= 1");
  EXPECT_EQ(g.rel, Rel::Le);
  EXPECT_EQ(g.coeffs.at("a"), -1);
  EXPECT_EQ(g.constant, -1);
}

TEST(Linear, RejectsNonLinear) {
  EXPECT_FALSE(parse_linear("x * y > 0").has_value());
  EXPECT_FALSE(parse_linear("just_a_prop").has_value());
}

TEST(Linear, Negation) {
  auto c = lc("x <= 3").negated();  // x > 3
  EXPECT_EQ(c.rel, Rel::Lt);
  EXPECT_EQ(c.coeffs.at("x"), -1);
  EXPECT_EQ(c.constant, -3);
  EXPECT_EQ(lc("x = 1").negated().rel, Rel::Ne);
  EXPECT_EQ(lc("x != 1").negated().rel, Rel::Eq);
}

TEST(FourierMotzkin, Basics) {
  EXPECT_TRUE(conjunction_satisfiable({lc("x > 0"), lc("x < 10")}));
  EXPECT_FALSE(conjunction_satisfiable({lc("x > 5"), lc("x < 5")}));
  EXPECT_FALSE(conjunction_satisfiable({lc("x >= 5"), lc("x <= 4")}));
  EXPECT_TRUE(conjunction_satisfiable({lc("x >= 5"), lc("x <= 5")}));
  EXPECT_FALSE(conjunction_satisfiable({lc("x > 5"), lc("x <= 5")}));
}

TEST(FourierMotzkin, MultiVariable) {
  // x < y, y < z, z < x: cyclic, unsat.
  EXPECT_FALSE(conjunction_satisfiable({lc("x < y"), lc("y < z"), lc("z < x")}));
  EXPECT_TRUE(conjunction_satisfiable({lc("x < y"), lc("y < z")}));
  // y = z + z and y = 2*z are jointly satisfiable...
  EXPECT_TRUE(conjunction_satisfiable({lc("y = z + z"), lc("y = 2*z")}));
  // ...and y = z + z contradicts y != 2*z.
  EXPECT_FALSE(conjunction_satisfiable({lc("y = z + z"), lc("y != 2*z")}));
}

TEST(FourierMotzkin, Disequalities) {
  EXPECT_TRUE(conjunction_satisfiable({lc("x != 0")}));
  EXPECT_FALSE(conjunction_satisfiable({lc("x != 0"), lc("x >= 0"), lc("x <= 0")}));
  EXPECT_TRUE(conjunction_satisfiable({lc("x != 0"), lc("x >= 0")}));
}

TEST(Oracles, Propositional) {
  PropositionalOracle oracle;
  EXPECT_TRUE(oracle.conj_sat({{"p", true}, {"q", false}}));
  EXPECT_FALSE(oracle.conj_sat({{"p", true}, {"p", false}}));
  // Propositional oracle does NOT understand arithmetic: a >= 1 and !(a > 0)
  // are compatible opaque atoms.
  EXPECT_TRUE(oracle.conj_sat({{"a >= 1", true}, {"a > 0", false}}));
}

TEST(Oracles, LinearArithmetic) {
  LinearArithmeticOracle oracle;
  EXPECT_FALSE(oracle.conj_sat({{"a >= 1", true}, {"a > 0", false}}));
  EXPECT_TRUE(oracle.conj_sat({{"a >= 1", true}, {"a > 5", false}}));
  // Mixed opaque + arithmetic.
  EXPECT_FALSE(oracle.conj_sat({{"p", true}, {"p", false}, {"a >= 1", true}}));
}

TEST(Oracles, InstancesRespectStateVsExtralogical) {
  LinearArithmeticOracle oracle;
  // x > 0 at instant 0, x < 0 at instant 1: fine for a state variable...
  std::vector<std::pair<TheoryLit, int>> lits = {{{"x > 0", true}, 0}, {{"x < 0", true}, 1}};
  EXPECT_TRUE(oracle.conj_sat_instances(lits, {}));
  // ...contradictory for an extralogical one.
  EXPECT_FALSE(oracle.conj_sat_instances(lits, {"x"}));
}

// ---------------------------------------------------------------------------
// Algorithm A.
// ---------------------------------------------------------------------------

TEST(AlgorithmA, ArithmeticValidityTheRunningExample) {
  // "Henceforth a >= 1 implies eventually a > 0" (Appendix B Section 1).
  const std::string f = "[]({a >= 1}) -> <>({a > 0})";
  {
    ltl::Arena a;
    LinearArithmeticOracle arith;
    EXPECT_TRUE(algorithm_a_valid(a, a.parse(f), arith).valid);
  }
  {
    ltl::Arena a;
    PropositionalOracle prop;
    EXPECT_FALSE(algorithm_a_valid(a, a.parse(f), prop).valid);
  }
}

TEST(AlgorithmA, DoublingExample) {
  // [](y = z + z) -> [](y = 2z): valid in the theory, not uninterpreted.
  const std::string f = "[]({y = z + z}) -> []({y = 2*z})";
  {
    ltl::Arena a;
    LinearArithmeticOracle arith;
    auto r = algorithm_a_valid(a, a.parse(f), arith);
    EXPECT_TRUE(r.valid);
    EXPECT_GT(r.pruned_edges, 0u);
  }
  {
    ltl::Arena a;
    PropositionalOracle prop;
    EXPECT_FALSE(algorithm_a_valid(a, a.parse(f), prop).valid);
  }
}

TEST(AlgorithmA, AgreesWithPlainTableauUnderPropositionalOracle) {
  const std::vector<std::string> corpus = {
      "[]p -> p", "p -> []p", "(<>[]p) -> ([]<>p)", "U(p,q) -> <>q",
      "SU(p,q) -> <>q", "[](p -> q) -> ([]p -> []q)", "<>p \\/ []!p",
  };
  PropositionalOracle prop;
  for (const auto& s : corpus) {
    ltl::Arena a1, a2;
    EXPECT_EQ(algorithm_a_valid(a1, a1.parse(s), prop).valid, ltl::valid(a2, a2.parse(s)))
        << s;
  }
}

// ---------------------------------------------------------------------------
// Algorithm B.
// ---------------------------------------------------------------------------

TEST(AlgorithmB, PureTemporalValidityNeverCallsOracle) {
  ltl::Arena a;
  LinearArithmeticOracle arith;
  auto r = algorithm_b_valid(a, a.parse("(<>[]p) -> ([]<>p)"), arith);
  EXPECT_TRUE(r.valid);
  EXPECT_TRUE(r.condition_true);
  EXPECT_EQ(r.oracle_calls, 0u);
}

TEST(AlgorithmB, ArithmeticValidity) {
  {
    ltl::Arena a;
    LinearArithmeticOracle arith;
    EXPECT_TRUE(algorithm_b_valid(a, a.parse("[]({a >= 1}) -> <>({a > 0})"), arith).valid);
  }
  {
    ltl::Arena a;
    LinearArithmeticOracle arith;
    EXPECT_TRUE(algorithm_b_valid(a, a.parse("[]({y = z + z}) -> []({y = 2*z})"), arith).valid);
  }
  {
    ltl::Arena a;
    PropositionalOracle prop;
    EXPECT_FALSE(algorithm_b_valid(a, a.parse("[]({y = z + z}) -> []({y = 2*z})"), prop).valid);
  }
}

TEST(AlgorithmB, StateVsExtralogicalSection51Example) {
  // [](x > 0) \/ [](x < 1):
  //   state variable x       -> requires forall y (y>0) or forall z (z<1): invalid;
  //   extralogical variable x -> forall x (x>0 \/ x<1): valid over the rationals.
  const std::string f = "[]({x > 0}) \\/ []({x < 1})";
  {
    ltl::Arena a;
    LinearArithmeticOracle arith;
    EXPECT_FALSE(algorithm_b_valid(a, a.parse(f), arith, /*extralogical=*/{}).valid);
  }
  {
    ltl::Arena a;
    LinearArithmeticOracle arith;
    EXPECT_TRUE(algorithm_b_valid(a, a.parse(f), arith, /*extralogical=*/{"x"}).valid);
  }
}

TEST(AlgorithmB, AgreesWithAlgorithmA) {
  const std::vector<std::string> corpus = {
      "[]({a >= 1}) -> <>({a > 0})",
      "[]({y = z + z}) -> []({y = 2*z})",
      "<>({x > 3}) -> <>({x > 2})",
      "[]({x > 3}) -> []({x > 4})",   // invalid
      "[]({x > 0} -> o {x > 0}) -> ({x > 0} -> []{x > 0})",
      "[]p -> p",
      "p -> []p",                      // invalid
  };
  LinearArithmeticOracle arith;
  for (const auto& s : corpus) {
    ltl::Arena a1, a2;
    const bool va = algorithm_a_valid(a1, a1.parse(s), arith).valid;
    const bool vb = algorithm_b_valid(a2, a2.parse(s), arith).valid;
    EXPECT_EQ(va, vb) << s;
  }
}

TEST(AlgorithmB, ReportsConditionStructure) {
  ltl::Arena a;
  LinearArithmeticOracle arith;
  auto r = algorithm_b_valid(a, a.parse("[]({y = z + z}) -> []({y = 2*z})"), arith);
  EXPECT_TRUE(r.valid);
  EXPECT_FALSE(r.condition_true);     // needs the theory
  EXPECT_GT(r.condition_cubes, 0u);   // at least one []C_i disjunct
  EXPECT_GT(r.oracle_calls, 0u);
  EXPECT_GT(r.distinct_props, 0u);
}

}  // namespace
}  // namespace il::theory
