// Differential suite for the incremental obligation-graph monitor: on every
// case-study specification (mutex, queue, AB protocol, self-timed, arbiter)
// the append()-driven verdict stream must be bit-identical — the same
// axioms fail, reported in the same order, at *every* prefix of the trace —
// to (a) the scratch-mode monitor (the pre-incremental evaluation path,
// kept behind Monitor::Mode::Scratch exactly for this comparison) and
// (b) a from-scratch uncached check of each prefix.  Good and misbehaving
// runs are both streamed, sequentially and through engine::BatchMonitor at
// several pool sizes.
#include <gtest/gtest.h>

#include <cstddef>
#include <deque>
#include <vector>

#include "core/check.h"
#include "core/monitor.h"
#include "engine/stream.h"
#include "systems/ab_protocol.h"
#include "systems/arbiter.h"
#include "systems/mutex.h"
#include "systems/queue_system.h"
#include "systems/selftimed.h"

namespace il {
namespace {

std::vector<std::int64_t> domain(std::size_t n) {
  std::vector<std::int64_t> d;
  for (std::size_t i = 1; i <= n; ++i) d.push_back(static_cast<std::int64_t>(i));
  return d;
}

/// Every case-study spec paired with good and misbehaving recorded runs —
/// the same corpus the offline differential test uses, replayed as streams.
struct StreamCases {
  std::deque<Spec> specs;  ///< deque: spec_of pointers survive growth
  std::vector<const Spec*> spec_of;  ///< per trace
  std::vector<Trace> traces;

  StreamCases() {
    traces.reserve(32);

    specs.push_back(sys::mutex_spec(3));
    const Spec* mutex = &specs.back();
    for (std::uint64_t seed = 1; seed <= 2; ++seed) {
      sys::MutexRunConfig mc;
      mc.seed = seed;
      mc.entries = 4;
      add(mutex, sys::run_mutex(mc));
      add(mutex, sys::run_mutex_buggy(mc));
    }

    specs.push_back(sys::queue_spec(domain(3)));
    const Spec* queue = &specs.back();
    sys::QueueRunConfig qc;
    qc.seed = 1;
    qc.values = 3;
    add(queue, sys::run_fifo_queue(qc));
    add(queue, sys::run_swapping_queue(qc));
    add(queue, sys::run_lifo_stack(qc));

    sys::AbRunConfig ac;
    ac.seed = 7;
    specs.push_back(sys::ab_sender_spec(domain(3)));
    const Spec* ab = &specs.back();
    add(ab, sys::run_ab_protocol(ac).trace);
    add(ab, sys::run_ab_protocol_stuck_bit(ac).trace);

    specs.push_back(sys::request_ack_spec());
    const Spec* selftimed = &specs.back();
    sys::SelfTimedRunConfig sc;
    add(selftimed, sys::run_request_ack(sc));
    add(selftimed, sys::run_request_ack_buggy(sc));

    specs.push_back(sys::arbiter_spec());
    const Spec* arbiter = &specs.back();
    sys::ArbiterRunConfig arc;
    add(arbiter, sys::run_arbiter(arc));
    add(arbiter, sys::run_arbiter_buggy(arc));
  }

  void add(const Spec* spec, Trace trace) {
    traces.push_back(std::move(trace));
    spec_of.push_back(spec);
  }
};

TEST(MonitorIncremental, BitIdenticalToScratchAtEveryPrefix) {
  StreamCases cases;
  std::size_t failing_prefixes = 0;
  for (std::size_t c = 0; c < cases.traces.size(); ++c) {
    const Spec& spec = *cases.spec_of[c];
    const Trace& run = cases.traces[c];
    Monitor inc(spec);  // Mode::Incremental is the default
    Monitor scratch(spec, {}, Monitor::Mode::Scratch);
    Trace prefix;
    for (std::size_t k = 0; k < run.size(); ++k) {
      const State& s = run.states()[k];
      const CheckResult from_inc = inc.append(s);
      scratch.observe(s);
      const CheckResult from_scratch = scratch.current();
      prefix.push(s);
      const CheckResult ground = check_spec_cached(spec, prefix, {}, nullptr);

      ASSERT_EQ(from_inc.ok, ground.ok) << "case " << c << " prefix " << k;
      ASSERT_EQ(from_inc.failed, ground.failed) << "case " << c << " prefix " << k;
      ASSERT_EQ(from_scratch.ok, ground.ok) << "case " << c << " prefix " << k;
      ASSERT_EQ(from_scratch.failed, ground.failed) << "case " << c << " prefix " << k;
      failing_prefixes += ground.ok ? 0 : 1;
    }
  }
  // The corpus must actually exercise failures, or agreement proves little.
  EXPECT_GT(failing_prefixes, 0u);
}

TEST(MonitorIncremental, RepeatedVerdictIsPureReuse) {
  StreamCases cases;
  const Spec& spec = *cases.spec_of[0];
  const Trace& run = cases.traces[0];
  Monitor inc(spec);
  for (const State& s : run.states()) inc.append(s);
  const CheckResult first = inc.current();
  const std::size_t recomputes = inc.obligations().recomputes();
  const std::size_t inserts = inc.cache().inserts();
  const CheckResult second = inc.current();  // no append in between
  EXPECT_EQ(second.ok, first.ok);
  EXPECT_EQ(second.failed, first.failed);
  EXPECT_EQ(inc.obligations().recomputes(), recomputes);
  EXPECT_EQ(inc.cache().inserts(), inserts);
}

TEST(MonitorIncremental, ObligationGraphTracksSettlement) {
  StreamCases cases;
  for (std::size_t c = 0; c < cases.traces.size(); ++c) {
    Monitor inc(*cases.spec_of[c]);
    for (const State& s : cases.traces[c].states()) inc.append(s);
    const ObligationGraph& g = inc.obligations();
    EXPECT_GT(g.size(), 0u) << "case " << c;
    EXPECT_EQ(g.epoch(), cases.traces[c].size()) << "case " << c;
    EXPECT_EQ(g.settled_count() + g.open_count(), g.size()) << "case " << c;
    EXPECT_GT(g.edges(), 0u) << "case " << c;
  }
}

TEST(MonitorIncremental, BatchMonitorPoolsAreDeterministicAndIdentical) {
  StreamCases cases;
  for (std::size_t c = 0; c < cases.traces.size(); ++c) {
    const Spec& spec = *cases.spec_of[c];
    const Trace& run = cases.traces[c];
    // Four subscribers to one stream: incremental and scratch monitors
    // interleaved, so every feed cross-checks the two evaluation paths.
    std::vector<engine::MonitorJob> jobs;
    jobs.push_back({&spec, {}, Monitor::Mode::Incremental});
    jobs.push_back({&spec, {}, Monitor::Mode::Scratch});
    jobs.push_back({&spec, {}, Monitor::Mode::Incremental});
    jobs.push_back({&spec, {}, Monitor::Mode::Scratch});

    // Reference stream: single-threaded fleet.
    std::vector<std::vector<CheckResult>> reference;
    {
      engine::Options opts;
      opts.num_threads = 1;
      engine::BatchMonitor fleet(jobs, opts);
      for (const State& s : run.states()) {
        const auto& v = fleet.feed(s);
        ASSERT_EQ(v.size(), jobs.size());
        for (std::size_t j = 1; j < v.size(); ++j) {
          ASSERT_EQ(v[j].ok, v[0].ok) << "case " << c << " job " << j;
          ASSERT_EQ(v[j].failed, v[0].failed) << "case " << c << " job " << j;
        }
        reference.push_back(v);
      }
      EXPECT_EQ(fleet.states_fed(), run.size());
      const engine::StreamStats& stats = fleet.stream_stats();
      EXPECT_EQ(stats.states, run.size());
      EXPECT_EQ(stats.verdicts, run.size() * jobs.size());
      EXPECT_GT(stats.obligation_entries, 0u);
      EXPECT_GT(stats.obligation_recomputed, 0u);
    }

    // Wider pools must reproduce the reference verdict stream exactly.
    for (const std::size_t threads : {2u, 4u}) {
      engine::Options opts;
      opts.num_threads = threads;
      engine::BatchMonitor fleet(jobs, opts);
      std::size_t k = 0;
      for (const State& s : run.states()) {
        const auto& v = fleet.feed(s);
        for (std::size_t j = 0; j < v.size(); ++j) {
          ASSERT_EQ(v[j].ok, reference[k][j].ok)
              << "case " << c << " threads " << threads << " state " << k;
          ASSERT_EQ(v[j].failed, reference[k][j].failed)
              << "case " << c << " threads " << threads << " state " << k;
        }
        ++k;
      }
    }
  }
}

}  // namespace
}  // namespace il
