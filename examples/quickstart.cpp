// Quickstart: parse interval-logic formulas, build a trace, locate interval
// terms with the F function, and check satisfaction.
//
//   ./quickstart
#include <cstdio>
#include <sstream>

#include "il.h"

int main() {
  using namespace il;

  // A computation: x approaches y, they meet, then y jumps to 16.
  TraceBuilder tb;
  tb.set("x", 5);
  tb.set("y", 3);
  tb.set("z", 0);
  tb.commit();
  tb.set("x", 7);
  tb.set("y", 7);
  tb.set("z", 1);
  tb.commit();  // x = y becomes true here
  tb.set("x", 9);
  tb.set("y", 9);
  tb.commit();
  tb.set("y", 16);
  tb.set("z", 2);
  tb.commit();  // y = 16 becomes true here
  const Trace trace = tb.take();

  // The paper's first worked example (Chapter 2):
  //   [ x = y  =>  y = 16 ]  [] x > z
  // "For the interval from x becoming equal to y until y becoming 16,
  //  x stays greater than z."
  FormulaPtr spec = parse_formula("[ {x = y} => {y = 16} ] [] x > z");
  std::printf("formula: %s\n", spec->to_string().c_str());
  std::printf("holds on trace: %s\n", holds(*spec, trace) ? "yes" : "no");

  // Locate the interval the F function constructs.
  Interval where = locate(*parse_term("{x = y} => {y = 16}"), trace);
  std::printf("interval selected: %s\n", where.to_string().c_str());

  // The paper's pictorial notation, mechanized (Section 9's "graphical
  // representation" direction): signal waveforms with the located interval.
  TraceBuilder sig;
  sig.set_bool("A", false);
  sig.set_bool("B", false);
  sig.commit();
  sig.set_bool("A", true);
  sig.commit();
  sig.commit();
  sig.set_bool("B", true);
  sig.commit();
  sig.commit();
  std::printf("\n%s", draw_term(sig.trace(), {"A", "B"}, parse_term("A => B")).c_str());

  // Vacuous satisfaction: an interval that cannot be constructed satisfies
  // anything; the * modifier turns that into a requirement.
  std::printf("[ {x = 99} => ] false (vacuous): %s\n",
              holds(*parse_formula("[ {x = 99} => ] false"), trace) ? "yes" : "no");
  std::printf("*{x = 99} (occurrence required): %s\n",
              holds(*parse_formula("*{x = 99}"), trace) ? "yes" : "no");

  // Validity checking by exhaustive bounded enumeration: V9 of Chapter 4.
  auto v9 = parse_formula("[ a => begin(!(a)) ] [] a");
  auto result = check_valid_bounded(v9, {"a"}, 5);
  std::printf("V9 valid on all traces up to length 5: %s (%zu traces)\n",
              result.valid ? "yes" : "no", result.traces_checked);

  // Batch checking: the engine fans a specification over many traces at
  // once (here: the worked-example trace and a variant that violates it),
  // with deterministic, input-ordered results.
  Spec batch_spec;
  batch_spec.name = "worked_example";
  batch_spec.axioms.push_back({"x_gt_z", spec});

  TraceBuilder bad;
  bad.set("x", 5);
  bad.set("y", 3);
  bad.set("z", 0);
  bad.commit();
  bad.set("x", 7);
  bad.set("y", 7);
  bad.set("z", 9);  // z overtakes x inside the interval
  bad.commit();
  bad.set("y", 16);
  bad.commit();
  const std::vector<Trace> fleet = {trace, bad.take()};

  engine::BatchChecker checker;  // one worker per hardware thread
  auto verdicts = checker.run(engine::jobs_for_traces(batch_spec, fleet));
  // check_stats().threads counts spawned workers; 0 means the batch ran inline.
  std::printf("\nbatch of %zu traces (%zu worker threads, %zu memo hits):\n", verdicts.size(),
              checker.check_stats().threads == 0 ? 1 : checker.check_stats().threads,
              checker.check_stats().memo_hits);
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    std::printf("  trace %zu: %s\n", i, verdicts[i].to_string().c_str());
  }

  // Streaming: feed states one at a time to an incremental monitor and
  // read verdicts as they settle.  The response axiom fails *provisionally*
  // while a request is outstanding (the stuttering extension has no grant
  // yet) and recovers the moment the grant arrives; under the hood only the
  // open obligations re-settle — verdicts for closed intervals are pinned.
  Spec stream_spec;
  stream_spec.name = "stream";
  stream_spec.axioms.push_back({"response", parse_formula("[] [ req => ] *grant")});
  Monitor monitor(stream_spec);  // Monitor::Mode::Incremental is the default

  struct Step {
    bool req, grant;
    const char* note;
  };
  const Step steps[] = {
      {false, false, "quiet"},
      {true, false, "req rises: grant now owed"},
      {true, false, "still waiting"},
      {true, true, "grant rises: obligation settles"},
  };
  std::printf("\nstreaming %s:\n", stream_spec.axioms[0].formula->to_string().c_str());
  for (const Step& step : steps) {
    State s;
    s.set_bool("req", step.req);
    s.set_bool("grant", step.grant);
    const CheckResult verdict = monitor.append(s);  // observe + delta pass
    std::printf("  %-32s -> %s\n", step.note, verdict.to_string().c_str());
  }
  const auto& graph = monitor.obligations();
  std::printf("  obligations: %zu tracked, %zu settled, %zu re-settlements total\n",
              graph.size(), graph.settled_count(), graph.recomputes());

  // Monitoring as a service: a resident MonitorService owns a parked worker
  // pool; monitors register and retire at runtime while states stream in
  // through a bounded queue, and dump() renders the live counters as
  // debugfs-style `key value` text.
  MonitorService service;
  const MonitorId id = service.register_spec(stream_spec);
  for (const Step& step : steps) {
    State s;
    s.set_bool("req", step.req);
    s.set_bool("grant", step.grant);
    service.append(s);
  }
  service.flush();
  std::printf("\nservice: monitor %llu saw %zu rows; final verdict %s\n",
              static_cast<unsigned long long>(id), service.drain().size(),
              service.stats().totals.axioms_failed == 0 ? "clean" : "had failures");
  std::printf("--- service.dump() ---\n");
  std::ostringstream dump;
  service.dump(dump);
  std::printf("%s", dump.str().c_str());
  return 0;
}
