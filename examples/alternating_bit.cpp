// Chapter 7 demo: run the Alternating Bit protocol over a lossy,
// duplicating, delaying medium and check the Sender (Fig. 7-3), Receiver
// (Fig. 7-4), and end-to-end FIFO service specifications.
//
//   ./alternating_bit [loss_percent]
#include <cstdio>
#include <cstdlib>

#include "il.h"

int main(int argc, char** argv) {
  using namespace il;
  using namespace il::sys;

  AbRunConfig config;
  config.messages = 4;
  config.seed = 7;
  if (argc > 1) config.loss_probability = std::atoi(argv[1]) / 100.0;

  std::printf("alternating bit: %zu messages, loss %.0f%%, dup %.0f%%\n", config.messages,
              config.loss_probability * 100, config.duplication_probability * 100);

  AbRunResult result = run_ab_protocol(config);
  std::printf("delivered %zu/%zu; %llu transmissions, %llu packet losses, "
              "%llu duplicates, %llu ack losses\n",
              result.delivered, config.messages,
              static_cast<unsigned long long>(result.transmissions),
              static_cast<unsigned long long>(result.packet_losses),
              static_cast<unsigned long long>(result.packet_duplicates),
              static_cast<unsigned long long>(result.ack_losses));
  std::printf("trace: %zu states\n", result.trace.size());

  std::vector<std::int64_t> domain;
  for (std::size_t i = 1; i <= config.messages; ++i) domain.push_back(static_cast<std::int64_t>(i));

  auto sender = check_spec(ab_sender_spec(domain), result.trace);
  std::printf("sender spec (Fig. 7-3):   %s\n", sender.to_string().c_str());
  auto receiver = check_spec(ab_receiver_spec(domain), result.trace);
  std::printf("receiver spec (Fig. 7-4): %s\n", receiver.to_string().c_str());
  auto service = check_spec(fifo_service_spec("Send", "Rec", domain, "service"), result.trace);
  std::printf("Send/Rec FIFO service:    %s\n", service.to_string().c_str());
  return 0;
}
