// Chapter 6 demo: the self-timed request/acknowledge protocol and the
// arbiter, plus a taste of the decision procedures (Appendix B) deciding a
// protocol-shaped temporal property over a specialized theory.
//
//   ./arbiter_demo
#include <cstdio>

#include "il.h"

int main() {
  using namespace il;
  using namespace il::sys;

  std::printf("== request/acknowledgment protocol (Fig. 6-2) ==\n");
  SelfTimedRunConfig st;
  st.handshakes = 5;
  Trace str = run_request_ack(st);
  std::printf("trace: %zu states; spec: %s\n", str.size(),
              check_spec(request_ack_spec(), str).to_string().c_str());

  std::printf("\n== arbiter (Fig. 6-4) ==\n");
  ArbiterRunConfig ar;
  ar.grants = 6;
  Trace atr = run_arbiter(ar);
  std::printf("trace: %zu states; spec: %s; mutual exclusion of grants: %s\n", atr.size(),
              check_spec(arbiter_spec(), atr).to_string().c_str(),
              check(arbiter_mutual_exclusion(), atr) ? "holds" : "VIOLATED");

  std::printf("\n== Appendix B decision procedures ==\n");
  {
    ltl::Arena arena;
    theory::LinearArithmeticOracle arith;
    auto f = arena.parse("[]({a >= 1}) -> <>({a > 0})");
    auto ra = theory::algorithm_a_valid(arena, f, arith);
    std::printf("Algorithm A: [](a>=1) -> <>(a>0): %s (graph %zun/%zue, %zu pruned)\n",
                ra.valid ? "valid" : "invalid", ra.graph_nodes, ra.graph_edges,
                ra.pruned_edges);
  }
  {
    ltl::Arena arena;
    theory::LinearArithmeticOracle arith;
    auto f = arena.parse("[]({x > 0}) \\/ []({x < 1})");
    auto state_var = theory::algorithm_b_valid(arena, f, arith, {});
    auto extralogical = theory::algorithm_b_valid(arena, f, arith, {"x"});
    std::printf("Algorithm B: [](x>0) \\/ [](x<1): state x -> %s, extralogical x -> %s\n",
                state_var.valid ? "valid" : "invalid",
                extralogical.valid ? "valid" : "invalid");
  }
  return 0;
}
