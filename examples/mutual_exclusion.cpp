// Chapter 8 demo: run the distributed mutual-exclusion algorithm, check the
// Figure 8-1 axioms and the exclusion theorem, show a buggy variant being
// caught, and model-check the entailment behind the Figure 8-2 proof.
//
//   ./mutual_exclusion [seed]
#include <cstdio>
#include <cstdlib>

#include "il.h"

int main(int argc, char** argv) {
  using namespace il;
  using namespace il::sys;

  MutexRunConfig config;
  config.processes = 3;
  config.entries = 6;
  if (argc > 1) config.seed = static_cast<std::uint64_t>(std::atoll(argv[1]));

  std::printf("== conforming algorithm (seed %llu, %zu processes) ==\n",
              static_cast<unsigned long long>(config.seed), config.processes);
  Trace tr = run_mutex(config);
  std::printf("trace: %zu states\n", tr.size());
  auto r = check_spec(mutex_spec(config.processes), tr);
  std::printf("Figure 8-1 axioms: %s\n", r.to_string().c_str());
  std::printf("[] !(cs_i /\\ cs_j): %s\n",
              check(mutex_theorem(config.processes), tr) ? "holds" : "VIOLATED");

  std::printf("\n== racy variant (skips the flag scan) ==\n");
  MutexRunConfig bad = config;
  bad.processes = 2;
  Trace btr = run_mutex_buggy(bad);
  auto br = check_spec(mutex_spec(2), btr);
  std::printf("Figure 8-1 axioms: %s\n", br.to_string().c_str());
  std::printf("[] !(cs1 /\\ cs2): %s\n",
              check(mutex_theorem(2), btr) ? "holds" : "VIOLATED");

  std::printf("\n== the Figure 8-2 proof, model-checked ==\n");
  auto proof = check_mutex_entailment_bounded(4);
  std::printf("Init /\\ A1 /\\ A2 -> []!(cs1 /\\ cs2) on all traces <= 4 states: %s "
              "(%zu traces)\n",
              proof.valid ? "valid" : "REFUTED", proof.traces_checked);
  return 0;
}
