// E8 — Appendix C Section 4.5: nonelementary growth of the low-level
// language graphs under nested iteration connectives.
//
// The paper's A1/A2/A3 examples nest iter(*) inside infloop with `as`
// conjunctions; each level can square (or worse) the number of reachable
// marker sets, and the node-disjoining step multiplies the basis.  This
// bench sweeps the nesting depth of
//     infloop( iter(*)(a_1, b_1) as ... as iter(*)(a_n, b_n) )
// and reports reachable nodes/edges and the node-basis size — the quantity
// whose growth drives the nonelementary bound.  Decisions go through the
// engine's job path (engine/decision.h); the batch case fans a corpus of
// satisfiability probes across the worker pool.
#include <benchmark/benchmark.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "engine/decision.h"
#include "lll/decide.h"
#include "lll/encode.h"
#include "lll/graph.h"

namespace {

using namespace il::lll;

ExprId nested(int n) {
  ExprId acc = kNoExpr;
  for (int i = 0; i < n; ++i) {
    const std::string p = "p" + std::to_string(i);
    const std::string q = "q" + std::to_string(i);
    // Two-instant bodies so concurrent copies genuinely overlap.
    ExprId it = iter_paren(semi(lit(p), lit(p)), lit(q));
    acc = acc == kNoExpr ? it : same_len(acc, it);
  }
  return infloop(acc);
}

void bench_nested_iterators(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ExprId e = nested(n);
  std::size_t nodes = 0, edges = 0, basis = 0;
  bool exploded = false;
  for (auto _ : state) {
    try {
      GraphBuilder builder;
      Graph g = builder.build(e);
      nodes = g.node_count();
      edges = g.edge_count();
      basis = builder.basis_used();
      benchmark::DoNotOptimize(g);
    } catch (const std::invalid_argument&) {
      // The 500k-edge guard tripped: the blowup itself is the data point.
      exploded = true;
      break;
    }
  }
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["edges"] = static_cast<double>(edges);
  state.counters["basis"] = static_cast<double>(basis);
  state.counters["exploded"] = exploded ? 1 : 0;
  if (exploded) state.SkipWithError("subset construction exceeded 500k edges");
}

void bench_nested_decision(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const il::engine::DecisionJob job = il::engine::lll_sat_job(nested(n));
  for (auto _ : state) {
    auto r = il::engine::run_decision_job(job);
    benchmark::DoNotOptimize(r);
  }
}

// Depth of iter* nesting in the *first* argument (the restricted-quantifier
// fragment L1 keeps this decidable but the closure squares per level).
// Depth 3 intentionally trips the 500k-edge guard: the growth 20 -> ~18k ->
// >500k edges across depths 1..3 is the Section 4.5 nonelementary-blowup
// claim made measurable; the skipped entry reports exploded=1.
void bench_deep_first_arg(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ExprId a = concat(lit("p"), tstar());
  for (int i = 0; i < n; ++i) {
    a = iter_paren(a, concat(lit("q" + std::to_string(i)), tstar()));
  }
  std::size_t nodes = 0, edges = 0;
  bool exploded = false;
  for (auto _ : state) {
    try {
      GraphBuilder builder;
      Graph g = builder.build(a);
      nodes = g.node_count();
      edges = g.edge_count();
      benchmark::DoNotOptimize(g);
    } catch (const std::invalid_argument&) {
      exploded = true;
      break;
    }
  }
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["edges"] = static_cast<double>(edges);
  state.counters["exploded"] = exploded ? 1 : 0;
  if (exploded) state.SkipWithError("subset construction exceeded 500k edges");
}

/// A fleet of LLL satisfiability probes through the batch engine: the
/// nesting family plus the paper's synchronization constraint, decided as
/// one input-ordered batch; args are worker threads.
void bench_lll_batch_engine(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  std::vector<il::engine::DecisionJob> jobs;
  for (int i = 0; i < 4; ++i) jobs.push_back(il::engine::lll_sat_job(nested(1 + (i % 2))));
  jobs.push_back(il::engine::lll_sat_job(
      starts_no_later(concat(lit("p"), tstar()), concat(lit("q"), tstar()))));
  jobs.push_back(il::engine::lll_sat_job(iter_star(concat(lit("P"), tstar()), lit("Q"))));
  jobs.push_back(
      il::engine::lll_sat_job(conj(infloop(lit("x")), semi(tstar(), lit("x", true)))));
  il::engine::Options options;
  options.num_threads = threads;
  for (auto _ : state) {
    auto results = il::engine::decide_batch(jobs, options);
    benchmark::DoNotOptimize(results);
  }
  state.counters["jobs"] = static_cast<double>(jobs.size());
}

/// The same fleet re-decided through one long-lived BatchDecider: after the
/// first batch every probe is a DecisionCache hit, the regression-corpus
/// shape the cross-batch cache exists for.
void bench_lll_batch_engine_warm(benchmark::State& state) {
  std::vector<il::engine::DecisionJob> jobs;
  for (int i = 0; i < 4; ++i) jobs.push_back(il::engine::lll_sat_job(nested(1 + (i % 2))));
  jobs.push_back(il::engine::lll_sat_job(
      starts_no_later(concat(lit("p"), tstar()), concat(lit("q"), tstar()))));
  jobs.push_back(il::engine::lll_sat_job(iter_star(concat(lit("P"), tstar()), lit("Q"))));
  jobs.push_back(
      il::engine::lll_sat_job(conj(infloop(lit("x")), semi(tstar(), lit("x", true)))));
  il::engine::Options options;
  options.num_threads = static_cast<std::size_t>(state.range(0));
  il::engine::BatchDecider decider(options);
  {
    auto warmup = decider.run(jobs);
    benchmark::DoNotOptimize(warmup);
  }
  double hit_rate = 0;
  for (auto _ : state) {
    auto results = decider.run(jobs);
    hit_rate = static_cast<double>(decider.stats().decision_hits) /
               static_cast<double>(decider.stats().jobs);
    benchmark::DoNotOptimize(results);
  }
  state.counters["jobs"] = static_cast<double>(jobs.size());
  state.counters["hit_rate"] = hit_rate;
}

}  // namespace

BENCHMARK(bench_nested_iterators)->DenseRange(1, 3);
BENCHMARK(bench_nested_decision)->DenseRange(1, 2);
BENCHMARK(bench_deep_first_arg)->DenseRange(1, 3);
BENCHMARK(bench_lll_batch_engine)->Arg(1)->Arg(2)->Arg(4);
BENCHMARK(bench_lll_batch_engine_warm)->Arg(1)->Arg(4);

BENCHMARK_MAIN();
