// E8 — Appendix C Section 4.5: nonelementary growth of the low-level
// language graphs under nested iteration connectives.
//
// The paper's A1/A2/A3 examples nest iter(*) inside infloop with `as`
// conjunctions; each level can square (or worse) the number of reachable
// marker sets, and the node-disjoining step multiplies the basis.  This
// bench sweeps the nesting depth of
//     infloop( iter(*)(a_1, b_1) as ... as iter(*)(a_n, b_n) )
// and reports reachable nodes/edges and the node-basis size — the quantity
// whose growth drives the nonelementary bound.
#include <benchmark/benchmark.h>

#include <stdexcept>

#include "lll/decide.h"
#include "lll/graph.h"

namespace {

using namespace il::lll;

ExprPtr nested(int n) {
  ExprPtr acc;
  for (int i = 0; i < n; ++i) {
    const std::string p = "p" + std::to_string(i);
    const std::string q = "q" + std::to_string(i);
    // Two-instant bodies so concurrent copies genuinely overlap.
    ExprPtr it = iter_paren(semi(lit(p), lit(p)), lit(q));
    acc = acc ? same_len(std::move(acc), std::move(it)) : std::move(it);
  }
  return infloop(std::move(acc));
}

void bench_nested_iterators(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ExprPtr e = nested(n);
  std::size_t nodes = 0, edges = 0, basis = 0;
  bool exploded = false;
  for (auto _ : state) {
    try {
      GraphBuilder builder;
      Graph g = builder.build(*e);
      nodes = g.node_count();
      edges = g.edge_count();
      basis = builder.basis_used();
      benchmark::DoNotOptimize(g);
    } catch (const std::invalid_argument&) {
      // The 500k-edge guard tripped: the blowup itself is the data point.
      exploded = true;
      break;
    }
  }
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["edges"] = static_cast<double>(edges);
  state.counters["basis"] = static_cast<double>(basis);
  state.counters["exploded"] = exploded ? 1 : 0;
  if (exploded) state.SkipWithError("subset construction exceeded 500k edges");
}

void bench_nested_decision(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ExprPtr e = nested(n);
  for (auto _ : state) {
    auto stats = decide(*e);
    benchmark::DoNotOptimize(stats);
  }
}

// Depth of iter* nesting in the *first* argument (the restricted-quantifier
// fragment L1 keeps this decidable but the closure squares per level).
// Depth 3 intentionally trips the 500k-edge guard: the growth 20 -> ~18k ->
// >500k edges across depths 1..3 is the Section 4.5 nonelementary-blowup
// claim made measurable; the skipped entry reports exploded=1.
void bench_deep_first_arg(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ExprPtr a = concat(lit("p"), tstar());
  for (int i = 0; i < n; ++i) {
    a = iter_paren(std::move(a), concat(lit("q" + std::to_string(i)), tstar()));
  }
  std::size_t nodes = 0, edges = 0;
  bool exploded = false;
  for (auto _ : state) {
    try {
      GraphBuilder builder;
      Graph g = builder.build(*a);
      nodes = g.node_count();
      edges = g.edge_count();
      benchmark::DoNotOptimize(g);
    } catch (const std::invalid_argument&) {
      exploded = true;
      break;
    }
  }
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["edges"] = static_cast<double>(edges);
  state.counters["exploded"] = exploded ? 1 : 0;
  if (exploded) state.SkipWithError("subset construction exceeded 500k edges");
}

}  // namespace

BENCHMARK(bench_nested_iterators)->DenseRange(1, 3);
BENCHMARK(bench_nested_decision)->DenseRange(1, 2);
BENCHMARK(bench_deep_first_arg)->DenseRange(1, 3);

BENCHMARK_MAIN();
