// E5 — Chapter 7: the Alternating Bit protocol under varying loss rates.
// Reports transmissions per delivered message (the retransmission overhead
// curve) and the specification-checking cost.
#include <benchmark/benchmark.h>

#include "core/check.h"
#include "engine/engine.h"
#include "systems/ab_protocol.h"
#include "systems/queue_system.h"

namespace {

using namespace il;
using namespace il::sys;

std::vector<std::int64_t> domain(std::size_t n) {
  std::vector<std::int64_t> d;
  for (std::size_t i = 1; i <= n; ++i) d.push_back(static_cast<std::int64_t>(i));
  return d;
}

void bench_ab_run(benchmark::State& state) {
  AbRunConfig config;
  config.messages = 3;
  config.loss_probability = static_cast<double>(state.range(0)) / 100.0;
  std::uint64_t tx = 0;
  std::size_t delivered = 0;
  for (auto _ : state) {
    config.seed++;
    auto r = run_ab_protocol(config);
    tx = r.transmissions;
    delivered = r.delivered;
    benchmark::DoNotOptimize(r);
  }
  state.counters["transmissions"] = static_cast<double>(tx);
  state.counters["delivered"] = static_cast<double>(delivered);
}

void bench_ab_check_sender(benchmark::State& state) {
  AbRunConfig config;
  config.messages = 3;
  config.seed = 5;
  auto run = run_ab_protocol(config);
  Spec spec = ab_sender_spec(domain(config.messages));
  for (auto _ : state) {
    auto r = check_spec(spec, run.trace);
    benchmark::DoNotOptimize(r);
  }
  state.counters["trace_len"] = static_cast<double>(run.trace.size());
}

void bench_ab_check_receiver(benchmark::State& state) {
  AbRunConfig config;
  config.messages = 3;
  config.seed = 5;
  auto run = run_ab_protocol(config);
  Spec spec = ab_receiver_spec(domain(config.messages));
  for (auto _ : state) {
    auto r = check_spec(spec, run.trace);
    benchmark::DoNotOptimize(r);
  }
}

void bench_ab_check_service(benchmark::State& state) {
  AbRunConfig config;
  config.messages = 3;
  config.seed = 5;
  auto run = run_ab_protocol(config);
  Spec spec = fifo_service_spec("Send", "Rec", domain(config.messages), "ab_service");
  for (auto _ : state) {
    auto r = check_spec(spec, run.trace);
    benchmark::DoNotOptimize(r);
  }
}

// All three AB specifications checked against one recorded run as a single
// engine batch (the many-specs-one-trace batch shape); range(0) = threads.
void bench_ab_check_all_batch(benchmark::State& state) {
  AbRunConfig config;
  config.messages = 3;
  config.seed = 5;
  auto run = run_ab_protocol(config);
  Spec sender = ab_sender_spec(domain(config.messages));
  Spec receiver = ab_receiver_spec(domain(config.messages));
  Spec service = fifo_service_spec("Send", "Rec", domain(config.messages), "ab_service");
  std::vector<engine::CheckJob> jobs = {
      {&sender, &run.trace, {}}, {&receiver, &run.trace, {}}, {&service, &run.trace, {}}};
  engine::Options opts;
  opts.num_threads = static_cast<std::size_t>(state.range(0));
  engine::BatchChecker checker(opts);
  for (auto _ : state) {
    auto r = checker.run(jobs);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * jobs.size()));
}

}  // namespace

// Loss percentage sweep: retransmission overhead grows with loss.
BENCHMARK(bench_ab_run)->Arg(0)->Arg(25)->Arg(50);
BENCHMARK(bench_ab_check_sender);
BENCHMARK(bench_ab_check_receiver);
BENCHMARK(bench_ab_check_service);
BENCHMARK(bench_ab_check_all_batch)->Arg(1)->Arg(3);

BENCHMARK_MAIN();
