// E10 — intra-decision parallelism: one hard decision using several workers.
//
// The engine's other benches scale *across* jobs; here the batch has exactly
// one job and the arg is Options::intra_decision_threads — the width lent to
// the decision's internal frontiers (tableau expansion waves, per-eventuality
// sweeps, LLL subset-construction waves).  Width 1 is the serial baseline;
// results are bit-identical at every width, so the only thing that may move
// is wall time.  Each case also exports its work-unit counters (waves,
// frontier sets, prefix-product hits) so the CI gate can check the
// prefix-product memo actually fired on the deep shapes.
//
// The cross-batch DecisionCache is disabled: with it on, every timed
// iteration after the first would be a pure cache probe.
#include <benchmark/benchmark.h>

#include <string>

#include "engine/decision.h"
#include "lll/ast.h"
#include "ltl/formula.h"

namespace {

using namespace il::lll;

/// Depth-n iter* nesting in the first argument (bench_lll_blowup's
/// bench_deep_first_arg): the prefix-product stress shape.
ExprId deep_first_arg(int n) {
  ExprId a = concat(lit("p"), tstar());
  for (int i = 0; i < n; ++i) {
    a = iter_paren(a, concat(lit("q" + std::to_string(i)), tstar()));
  }
  return a;
}

/// The Section 4.5 nesting family (bench_nested_iterators).
ExprId nested(int n) {
  ExprId acc = kNoExpr;
  for (int i = 0; i < n; ++i) {
    const std::string p = "p" + std::to_string(i);
    const std::string q = "q" + std::to_string(i);
    ExprId it = iter_paren(semi(lit(p), lit(p)), lit(q));
    acc = acc == kNoExpr ? it : same_len(acc, it);
  }
  return infloop(acc);
}

/// /\_{i<n} [](p_i -> <>q_i) (bench_response_chain): the deep tableau case.
std::string response_chain(int n) {
  std::string out;
  for (int i = 0; i < n; ++i) {
    if (i) out += " /\\ ";
    out += "[](p" + std::to_string(i) + " -> <>q" + std::to_string(i) + ")";
  }
  return out;
}

void run_single_job(benchmark::State& state, const il::engine::DecisionJob& job) {
  il::engine::Options options;
  options.num_threads = 1;  // no outer fan-out: the one job gets the pool
  options.intra_decision_threads = static_cast<std::size_t>(state.range(0));
  options.decision_cache = false;
  il::engine::BatchDecider decider(options);  // pool spawned once, outside timing
  const std::vector<il::engine::DecisionJob> jobs{job};
  il::engine::DecisionResult last;
  for (auto _ : state) {
    auto results = decider.run(jobs);
    last = results[0];
    benchmark::DoNotOptimize(results);
  }
  state.counters["waves"] = static_cast<double>(last.waves);
  state.counters["frontier_sets"] = static_cast<double>(last.frontier_sets);
  state.counters["sweep_tasks"] = static_cast<double>(last.sweep_tasks);
  state.counters["prefix_hits"] = static_cast<double>(last.prefix_hits);
  state.counters["prefix_misses"] = static_cast<double>(last.prefix_misses);
}

void bench_intra_deep_first_arg(benchmark::State& state) {
  run_single_job(state, il::engine::lll_sat_job(deep_first_arg(2)));
}

void bench_intra_nested_iterators(benchmark::State& state) {
  run_single_job(state, il::engine::lll_sat_job(nested(2)));
}

void bench_intra_response_chain(benchmark::State& state) {
  il::ltl::Arena arena;
  run_single_job(state,
                 il::engine::tableau_sat_job(arena, arena.parse(response_chain(3))));
}

}  // namespace

BENCHMARK(bench_intra_deep_first_arg)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();
BENCHMARK(bench_intra_nested_iterators)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();
BENCHMARK(bench_intra_response_chain)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

BENCHMARK_MAIN();
