// E3 — Chapter 5 queues: simulation and specification-checking cost as the
// number of values (and hence trace length and quantifier domain) grows.
#include <benchmark/benchmark.h>

#include "core/check.h"
#include "systems/queue_system.h"

namespace {

using namespace il;
using namespace il::sys;

std::vector<std::int64_t> domain(std::size_t n) {
  std::vector<std::int64_t> d;
  for (std::size_t i = 1; i <= n; ++i) d.push_back(static_cast<std::int64_t>(i));
  return d;
}

void bench_fifo_simulate(benchmark::State& state) {
  QueueRunConfig config;
  config.values = static_cast<std::size_t>(state.range(0));
  std::size_t len = 0;
  for (auto _ : state) {
    config.seed++;
    Trace tr = run_fifo_queue(config);
    len = tr.size();
    benchmark::DoNotOptimize(tr);
  }
  state.counters["trace_len"] = static_cast<double>(len);
}

void bench_fifo_check(benchmark::State& state) {
  QueueRunConfig config;
  config.values = static_cast<std::size_t>(state.range(0));
  Trace tr = run_fifo_queue(config);
  Spec spec = queue_spec(domain(config.values));
  for (auto _ : state) {
    auto r = check_spec(spec, tr);
    benchmark::DoNotOptimize(r);
  }
  state.counters["trace_len"] = static_cast<double>(tr.size());
}

void bench_unreliable_check(benchmark::State& state) {
  UnreliableQueueRunConfig config;
  config.values = static_cast<std::size_t>(state.range(0));
  Trace tr = run_unreliable_queue(config);
  Spec spec = unreliable_queue_spec(domain(config.values));
  for (auto _ : state) {
    auto r = check_spec(spec, tr);
    benchmark::DoNotOptimize(r);
  }
  state.counters["trace_len"] = static_cast<double>(tr.size());
}

}  // namespace

BENCHMARK(bench_fifo_simulate)->Arg(4)->Arg(8)->Arg(16);
BENCHMARK(bench_fifo_check)->Arg(4)->Arg(6)->Arg(8);
BENCHMARK(bench_unreliable_check)->Arg(3)->Arg(5);

BENCHMARK_MAIN();
