// E3 — Chapter 5 queues: simulation and specification-checking cost as the
// number of values (and hence trace length and quantifier domain) grows,
// and batch-engine throughput over fleets of queue runs.
#include <benchmark/benchmark.h>

#include "core/check.h"
#include "engine/engine.h"
#include "systems/queue_system.h"

namespace {

using namespace il;
using namespace il::sys;

std::vector<std::int64_t> domain(std::size_t n) {
  std::vector<std::int64_t> d;
  for (std::size_t i = 1; i <= n; ++i) d.push_back(static_cast<std::int64_t>(i));
  return d;
}

void bench_fifo_simulate(benchmark::State& state) {
  QueueRunConfig config;
  config.values = static_cast<std::size_t>(state.range(0));
  std::size_t len = 0;
  for (auto _ : state) {
    config.seed++;
    Trace tr = run_fifo_queue(config);
    len = tr.size();
    benchmark::DoNotOptimize(tr);
  }
  state.counters["trace_len"] = static_cast<double>(len);
}

void bench_fifo_check(benchmark::State& state) {
  QueueRunConfig config;
  config.values = static_cast<std::size_t>(state.range(0));
  Trace tr = run_fifo_queue(config);
  Spec spec = queue_spec(domain(config.values));
  for (auto _ : state) {
    auto r = check_spec(spec, tr);
    benchmark::DoNotOptimize(r);
  }
  state.counters["trace_len"] = static_cast<double>(tr.size());
}

void bench_unreliable_check(benchmark::State& state) {
  UnreliableQueueRunConfig config;
  config.values = static_cast<std::size_t>(state.range(0));
  Trace tr = run_unreliable_queue(config);
  Spec spec = unreliable_queue_spec(domain(config.values));
  for (auto _ : state) {
    auto r = check_spec(spec, tr);
    benchmark::DoNotOptimize(r);
  }
  state.counters["trace_len"] = static_cast<double>(tr.size());
}

// Batch throughput: one queue spec checked against many independent runs
// through the engine.  range(0) = fleet size, range(1) = threads.
void bench_fifo_batch_engine(benchmark::State& state) {
  const std::size_t fleet = static_cast<std::size_t>(state.range(0));
  QueueRunConfig config;
  config.values = 6;
  Spec spec = queue_spec(domain(config.values));
  std::vector<Trace> traces;
  traces.reserve(fleet);
  for (std::size_t i = 0; i < fleet; ++i) {
    config.seed = i + 1;
    traces.push_back(run_fifo_queue(config));
  }
  auto jobs = engine::jobs_for_traces(spec, traces);
  engine::Options opts;
  opts.num_threads = static_cast<std::size_t>(state.range(1));
  engine::BatchChecker checker(opts);
  for (auto _ : state) {
    auto results = checker.run(jobs);
    benchmark::DoNotOptimize(results);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * fleet));
  state.counters["traces"] = static_cast<double>(fleet);
  state.counters["axioms_checked"] = static_cast<double>(checker.check_stats().axioms_checked);
}

// The memoization cache's own effect on the quantifier-heavy queue axiom.
void bench_fifo_check_memoized(benchmark::State& state) {
  QueueRunConfig config;
  config.values = static_cast<std::size_t>(state.range(0));
  Trace tr = run_fifo_queue(config);
  Spec spec = queue_spec(domain(config.values));
  engine::Options opts;
  opts.num_threads = 1;
  opts.memoize = state.range(1) != 0;
  std::vector<engine::CheckJob> jobs = {{&spec, &tr, {}}};
  engine::BatchChecker checker(opts);
  for (auto _ : state) {
    auto r = checker.run(jobs);
    benchmark::DoNotOptimize(r);
  }
  state.counters["trace_len"] = static_cast<double>(tr.size());
}

}  // namespace

BENCHMARK(bench_fifo_simulate)->Arg(4)->Arg(8)->Arg(16);
BENCHMARK(bench_fifo_check)->Arg(4)->Arg(6)->Arg(8);
BENCHMARK(bench_unreliable_check)->Arg(3)->Arg(5);
BENCHMARK(bench_fifo_batch_engine)->Args({8, 1})->Args({8, 2})->Args({8, 4})->Args({32, 4});
BENCHMARK(bench_fifo_check_memoized)->Args({6, 0})->Args({6, 1})->Args({8, 0})->Args({8, 1});

BENCHMARK_MAIN();
