// E15 — what fault isolation costs: quarantined slots on the ingest path,
// and the price of the budget ladder's Scratch demotion rung.
//
//   bench_service_fault_ingest/V  a 32-state burst through a resident fleet
//                                 of 1000 monitors of which V were
//                                 organically quarantined before timing
//                                 (V = 0 / 10 / 100, i.e. 0% / 1% / 10%).
//                                 The V=0 case is shaped exactly like
//                                 bench_service_batch_ingest/1000/32: CI
//                                 gates it within 5% of that run, which is
//                                 the fault-isolation overhead bound for a
//                                 healthy fleet with injection compiled out.
//                                 V>0 prices the quarantined slots: each one
//                                 renders Verdict::Faulted rows per epoch
//                                 instead of evaluating, so throughput
//                                 should *rise* with V.
//   bench_service_degraded_mode/M per-state cost of a 100-monitor fleet in
//                                 Incremental mode (M=0) vs Scratch mode
//                                 (M=1): the ratio is what the budget
//                                 ladder's demote_to_scratch() rung trades —
//                                 bounded memory for re-evaluation work.
//
// Quarantine here is organic (no IL_FAULT_INJECTION needed): the victims
// monitor `[] (boom = 1 -> $unbound > 0)`, which short-circuits on every
// mutex state (absent keys read 0) and throws from the unbound meta exactly
// when the setup feeds one boom=1 state.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <vector>

#include "core/monitor.h"
#include "core/parser.h"
#include "engine/service.h"
#include "systems/mutex.h"

namespace {

using namespace il;

constexpr std::size_t kBlock = 32;  ///< timed states per iteration
constexpr std::size_t kFleet = 1000;

/// Same monitored spec as bench_service_batch_ingest, so the V=0 run is
/// comparable to bench_service_batch_ingest/1000/32 in the same JSON drop.
Spec monitored_spec() {
  Spec spec;
  spec.name = "monitored";
  spec.axioms.push_back({"safety", parse_formula("[] (cs1 -> x1)")});
  spec.axioms.push_back({"scan", parse_formula("[] [ x1 <= cs1 ] <> !x2")});
  return spec;
}

/// Throws std::invalid_argument (unbound meta) on the first boom=1 state.
Spec boom_spec() {
  Spec spec;
  spec.name = "boom";
  spec.axioms.push_back({"no_boom", parse_formula("[] (boom = 1 -> $unbound > 0)")});
  return spec;
}

Trace mutex_run(std::size_t entries) {
  sys::MutexRunConfig config;
  config.entries = entries;
  return sys::run_mutex(config);
}

/// 32-state bursts through a 1000-monitor fleet with `victims` quarantined.
/// Setup (untimed): register victims on the boom spec, feed one boom state
/// so they quarantine organically, drain.  Timed region: identical to
/// bench_service_batch_ingest — pause, enqueue kBlock states, resume, flush,
/// drain.
void bench_service_fault_ingest(benchmark::State& state) {
  const std::size_t victims = static_cast<std::size_t>(state.range(0));
  const Spec spec = monitored_spec();
  const Spec boom = boom_spec();
  const Trace tr = mutex_run(8);
  engine::Options options;
  options.num_threads = 4;
  options.max_epoch_batch = 32;
  options.queue_capacity = 2 * kBlock;
  engine::MonitorService service(options);
  for (std::size_t i = 0; i < kFleet; ++i)
    service.register_spec(i < victims ? boom : spec);
  State boomed = tr.at(0);
  boomed.set("boom", 1);
  service.append(boomed);
  service.flush();
  service.drain();
  std::size_t k = 0;
  std::size_t rows = 0;
  for (auto _ : state) {
    service.pause();
    for (std::size_t j = 0; j < kBlock; ++j) {
      service.append(tr.at(k));
      k = (k + 1) % tr.size();
    }
    service.resume();
    service.flush();
    rows += service.drain().size();
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kBlock));
  state.counters["monitors"] = static_cast<double>(kFleet);
  state.counters["quarantined"] = static_cast<double>(service.stats().monitors_quarantined);
}

/// Per-state fleet cost in Incremental (M=0) vs Scratch (M=1) mode: prices
/// the budget ladder's demotion rung without depending on a byte threshold.
void bench_service_degraded_mode(benchmark::State& state) {
  const bool scratch = state.range(0) != 0;
  const Spec spec = monitored_spec();
  const Trace tr = mutex_run(8);
  engine::Options options;
  options.num_threads = 4;
  options.queue_capacity = 64;
  engine::MonitorService service(options);
  for (std::size_t i = 0; i < 100; ++i)
    service.register_spec(spec, {}, scratch ? Monitor::Mode::Scratch : Monitor::Mode::Incremental);
  service.flush();
  std::size_t k = 0;
  std::size_t rows = 0;
  for (auto _ : state) {
    service.append(tr.at(k));
    service.flush();
    rows += service.drain().size();
    k = (k + 1) % tr.size();
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["monitors"] = 100.0;
  state.counters["scratch"] = scratch ? 1.0 : 0.0;
}

}  // namespace

BENCHMARK(bench_service_fault_ingest)->Arg(0)->Arg(10)->Arg(100);
BENCHMARK(bench_service_degraded_mode)->Arg(0)->Arg(1);

BENCHMARK_MAIN();
