// E2 — cost of exhaustively validating the Chapter 4 catalogue: bounded
// trace enumeration throughput as the trace-length bound grows, plus the
// engine's batched decision path over a corpus of temporal validities
// (the Appendix B regression shape: one batch, many validity lemmas).
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "core/bounded.h"
#include "core/parser.h"
#include "engine/decision.h"
#include "ltl/formula.h"

namespace {

void bench_v1_distribution(benchmark::State& state) {
  auto f = il::parse_formula(
      "(([ a => b ] p) /\\ ([ a => b ] q)) <=> ([ a => b ] (p /\\ q))");
  const std::size_t len = static_cast<std::size_t>(state.range(0));
  std::size_t traces = 0;
  for (auto _ : state) {
    auto r = il::check_valid_bounded(f, {"a", "b", "p", "q"}, len);
    traces = r.traces_checked;
    benchmark::DoNotOptimize(r);
  }
  state.counters["traces"] = static_cast<double>(traces);
}

void bench_v9_event_hold(benchmark::State& state) {
  auto f = il::parse_formula("[ a => begin(!(a)) ] [] a");
  const std::size_t len = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto r = il::check_valid_bounded(f, {"a"}, len);
    benchmark::DoNotOptimize(r);
  }
}

void bench_v15_composition(benchmark::State& state) {
  auto f = il::parse_formula(
      "(([ a => b ] [] p) /\\ ([ (a => b) => c ] [] p)) => ([ a => (b => c) ] [] p)");
  const std::size_t len = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto r = il::check_valid_bounded(f, {"a", "b", "c", "p"}, len);
    benchmark::DoNotOptimize(r);
  }
}

/// The "latches-until" macro of Appendix B Section 6 (see test_ltl.cpp).
std::string LU(const std::string& p, const std::string& q) {
  return "U(!(" + p + "), U((" + p + ") /\\ !(" + q + "), " + q + "))";
}
std::string LUA(const std::string& p, const std::string& q) {
  return LU(p, "(" + p + ") /\\ (" + q + ")");
}

/// A regression corpus of temporal validity lemmas decided as one batch
/// through the engine (engine/decision.h); args are worker threads.  All
/// formulas are valid, so the batch doubles as a self-check.
void bench_valid_corpus_engine(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  const std::vector<std::string> corpus = {
      "[]p -> p",
      "[]p -> o p",
      "[]p -> [][]p",
      "p -> <>p",
      "(<>[]p) -> ([]<>p)",
      "[](p -> q) -> ([]p -> []q)",
      "!(<>p) <-> []!p",
      "U(p,q) <-> (q \\/ (p /\\ o U(p,q)))",
      "SU(p,q) -> <>q",
      "(" + LUA("A", "B") + ") /\\ (" + LUA("B", "C") + ") -> (" + LUA("A \\/ B", "C") + ")",
  };
  il::ltl::Arena arena;
  std::vector<il::engine::DecisionJob> jobs;
  for (const auto& s : corpus) {
    jobs.push_back(il::engine::tableau_valid_job(arena, arena.parse(s)));
  }
  il::engine::Options options;
  options.num_threads = threads;
  std::size_t all_valid = 1;
  for (auto _ : state) {
    auto results = il::engine::decide_batch(jobs, options);
    for (const auto& r : results) all_valid &= r.verdict ? 1 : 0;
    benchmark::DoNotOptimize(results);
  }
  state.counters["jobs"] = static_cast<double>(jobs.size());
  state.counters["all_valid"] = static_cast<double>(all_valid);
}

/// The same validity corpus through one long-lived BatchDecider: every batch
/// after the first answers from the cross-batch DecisionCache — the cost of
/// re-running a lemma regression suite whose formulas did not change.
void bench_valid_corpus_engine_warm(benchmark::State& state) {
  const std::vector<std::string> corpus = {
      "[]p -> p",
      "[]p -> o p",
      "[]p -> [][]p",
      "p -> <>p",
      "(<>[]p) -> ([]<>p)",
      "[](p -> q) -> ([]p -> []q)",
      "!(<>p) <-> []!p",
      "U(p,q) <-> (q \\/ (p /\\ o U(p,q)))",
      "SU(p,q) -> <>q",
  };
  il::ltl::Arena arena;
  std::vector<il::engine::DecisionJob> jobs;
  for (const auto& s : corpus) {
    jobs.push_back(il::engine::tableau_valid_job(arena, arena.parse(s)));
  }
  il::engine::Options options;
  options.num_threads = static_cast<std::size_t>(state.range(0));
  il::engine::BatchDecider decider(options);
  {
    auto warmup = decider.run(jobs);
    benchmark::DoNotOptimize(warmup);
  }
  double hit_rate = 0;
  for (auto _ : state) {
    auto results = decider.run(jobs);
    hit_rate = static_cast<double>(decider.stats().decision_hits) /
               static_cast<double>(decider.stats().jobs);
    benchmark::DoNotOptimize(results);
  }
  state.counters["jobs"] = static_cast<double>(jobs.size());
  state.counters["hit_rate"] = hit_rate;
}

}  // namespace

BENCHMARK(bench_v1_distribution)->DenseRange(2, 3);
BENCHMARK(bench_v9_event_hold)->DenseRange(3, 6);
BENCHMARK(bench_v15_composition)->DenseRange(2, 3);
BENCHMARK(bench_valid_corpus_engine)->Arg(1)->Arg(2)->Arg(4);
BENCHMARK(bench_valid_corpus_engine_warm)->Arg(1)->Arg(4);

BENCHMARK_MAIN();
