// E2 — cost of exhaustively validating the Chapter 4 catalogue: bounded
// trace enumeration throughput as the trace-length bound grows.
#include <benchmark/benchmark.h>

#include "core/bounded.h"
#include "core/parser.h"

namespace {

void bench_v1_distribution(benchmark::State& state) {
  auto f = il::parse_formula(
      "(([ a => b ] p) /\\ ([ a => b ] q)) <=> ([ a => b ] (p /\\ q))");
  const std::size_t len = static_cast<std::size_t>(state.range(0));
  std::size_t traces = 0;
  for (auto _ : state) {
    auto r = il::check_valid_bounded(f, {"a", "b", "p", "q"}, len);
    traces = r.traces_checked;
    benchmark::DoNotOptimize(r);
  }
  state.counters["traces"] = static_cast<double>(traces);
}

void bench_v9_event_hold(benchmark::State& state) {
  auto f = il::parse_formula("[ a => begin(!(a)) ] [] a");
  const std::size_t len = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto r = il::check_valid_bounded(f, {"a"}, len);
    benchmark::DoNotOptimize(r);
  }
}

void bench_v15_composition(benchmark::State& state) {
  auto f = il::parse_formula(
      "(([ a => b ] [] p) /\\ ([ (a => b) => c ] [] p)) => ([ a => (b => c) ] [] p)");
  const std::size_t len = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto r = il::check_valid_bounded(f, {"a", "b", "c", "p"}, len);
    benchmark::DoNotOptimize(r);
  }
}

}  // namespace

BENCHMARK(bench_v1_distribution)->DenseRange(2, 3);
BENCHMARK(bench_v9_event_hold)->DenseRange(3, 6);
BENCHMARK(bench_v15_composition)->DenseRange(2, 3);

BENCHMARK_MAIN();
