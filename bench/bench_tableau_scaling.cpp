// E9 — tableau cost versus formula size.
//
// The paper reports the interval logic (like linear temporal logic) has a
// PSPACE-complete decision problem; the practical tableau grows
// exponentially with formula size.  This bench sweeps chains of temporal
// operators and reports node/edge counts alongside decision time, so the
// growth curve is visible in one run.
#include <benchmark/benchmark.h>

#include <string>

#include "ltl/tableau.h"

namespace {

/// /\_{i<n} [](p_i -> <>q_i): a classic response-property chain.
std::string response_chain(int n) {
  std::string out;
  for (int i = 0; i < n; ++i) {
    if (i) out += " /\\ ";
    out += "[](p" + std::to_string(i) + " -> <>q" + std::to_string(i) + ")";
  }
  return out;
}

/// Nested untils: U(p0, U(p1, ... U(pn-1, q)))
std::string until_nest(int n) {
  std::string out = "q";
  for (int i = n - 1; i >= 0; --i) out = "U(p" + std::to_string(i) + ", " + out + ")";
  return out;
}

void bench_response_chain(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::string text = response_chain(n);
  std::size_t nodes = 0, edges = 0;
  for (auto _ : state) {
    il::ltl::Arena arena;
    il::ltl::Tableau tableau(arena, arena.nnf(arena.parse(text)));
    bool sat = tableau.iterate();
    nodes = tableau.node_count();
    edges = tableau.edge_count();
    benchmark::DoNotOptimize(sat);
  }
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["edges"] = static_cast<double>(edges);
}

void bench_until_nest(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::string text = until_nest(n);
  std::size_t nodes = 0, edges = 0;
  for (auto _ : state) {
    il::ltl::Arena arena;
    il::ltl::Tableau tableau(arena, arena.nnf(arena.parse(text)));
    bool sat = tableau.iterate();
    nodes = tableau.node_count();
    edges = tableau.edge_count();
    benchmark::DoNotOptimize(sat);
  }
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["edges"] = static_cast<double>(edges);
}

void bench_validity_check(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  // []p -> p chained with distractors; valid at every size.
  std::string text = "([]p -> p)";
  for (int i = 0; i < n; ++i) {
    text = "([](" + text + ")) \\/ <>r" + std::to_string(i);
  }
  for (auto _ : state) {
    il::ltl::Arena arena;
    bool v = il::ltl::valid(arena, arena.parse(text));
    benchmark::DoNotOptimize(v);
  }
}

}  // namespace

BENCHMARK(bench_response_chain)->DenseRange(1, 4);
BENCHMARK(bench_until_nest)->DenseRange(1, 5);
BENCHMARK(bench_validity_check)->DenseRange(0, 3);

BENCHMARK_MAIN();
