// E9 — tableau cost versus formula size.
//
// The paper reports the interval logic (like linear temporal logic) has a
// PSPACE-complete decision problem; the practical tableau grows
// exponentially with formula size.  This bench sweeps chains of temporal
// operators and reports node/edge counts alongside decision time, so the
// growth curve is visible in one run.  Every case is decided through the
// engine's decision-job path (engine/decision.h) — the same code a batch
// worker runs — and the batch cases fan a corpus across the worker pool.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "engine/decision.h"
#include "ltl/formula.h"

namespace {

/// /\_{i<n} [](p_i -> <>q_i): a classic response-property chain.
std::string response_chain(int n, const std::string& prefix = "") {
  std::string out;
  for (int i = 0; i < n; ++i) {
    if (i) out += " /\\ ";
    out += "[](" + prefix + "p" + std::to_string(i) + " -> <>" + prefix + "q" +
           std::to_string(i) + ")";
  }
  return out;
}

/// Nested untils: U(p0, U(p1, ... U(pn-1, q)))
std::string until_nest(int n) {
  std::string out = "q";
  for (int i = n - 1; i >= 0; --i) out = "U(p" + std::to_string(i) + ", " + out + ")";
  return out;
}

void bench_response_chain(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::string text = response_chain(n);
  std::size_t nodes = 0, edges = 0;
  for (auto _ : state) {
    il::ltl::Arena arena;
    const auto r = il::engine::run_decision_job(
        il::engine::tableau_sat_job(arena, arena.parse(text)));
    nodes = r.graph_nodes;
    edges = r.graph_edges;
    benchmark::DoNotOptimize(r);
  }
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["edges"] = static_cast<double>(edges);
}

void bench_until_nest(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::string text = until_nest(n);
  std::size_t nodes = 0, edges = 0;
  for (auto _ : state) {
    il::ltl::Arena arena;
    const auto r = il::engine::run_decision_job(
        il::engine::tableau_sat_job(arena, arena.parse(text)));
    nodes = r.graph_nodes;
    edges = r.graph_edges;
    benchmark::DoNotOptimize(r);
  }
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["edges"] = static_cast<double>(edges);
}

void bench_validity_check(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  // []p -> p chained with distractors; valid at every size.
  std::string text = "([]p -> p)";
  for (int i = 0; i < n; ++i) {
    text = "([](" + text + ")) \\/ <>r" + std::to_string(i);
  }
  for (auto _ : state) {
    il::ltl::Arena arena;
    const auto r = il::engine::run_decision_job(
        il::engine::tableau_valid_job(arena, arena.parse(text)));
    benchmark::DoNotOptimize(r);
  }
}

/// A fleet of tableau decisions through the batch engine: args are
/// (batch size, worker threads).  Formulas get distinct atom namespaces so
/// every job builds its own graph (no accidental sharing of the work).
void bench_tableau_batch_engine(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  const std::size_t threads = static_cast<std::size_t>(state.range(1));
  il::ltl::Arena arena;
  std::vector<il::engine::DecisionJob> jobs;
  for (int i = 0; i < batch; ++i) {
    const std::string text = response_chain(2, "j" + std::to_string(i) + "_");
    jobs.push_back(il::engine::tableau_sat_job(arena, arena.parse(text)));
  }
  il::engine::Options options;
  options.num_threads = threads;
  for (auto _ : state) {
    auto results = il::engine::decide_batch(jobs, options);
    benchmark::DoNotOptimize(results);
  }
  state.counters["jobs"] = static_cast<double>(batch);
}

/// The same tableau fleet through one long-lived BatchDecider: batches after
/// the first resolve entirely from the cross-batch DecisionCache on the
/// calling thread (hit_rate reports the warm fraction).
void bench_tableau_batch_engine_warm(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  const std::size_t threads = static_cast<std::size_t>(state.range(1));
  il::ltl::Arena arena;
  std::vector<il::engine::DecisionJob> jobs;
  for (int i = 0; i < batch; ++i) {
    const std::string text = response_chain(2, "j" + std::to_string(i) + "_");
    jobs.push_back(il::engine::tableau_sat_job(arena, arena.parse(text)));
  }
  il::engine::Options options;
  options.num_threads = threads;
  il::engine::BatchDecider decider(options);
  {
    auto warmup = decider.run(jobs);
    benchmark::DoNotOptimize(warmup);
  }
  double hit_rate = 0;
  for (auto _ : state) {
    auto results = decider.run(jobs);
    hit_rate = static_cast<double>(decider.stats().decision_hits) /
               static_cast<double>(decider.stats().jobs);
    benchmark::DoNotOptimize(results);
  }
  state.counters["jobs"] = static_cast<double>(batch);
  state.counters["hit_rate"] = hit_rate;
}

}  // namespace

BENCHMARK(bench_response_chain)->DenseRange(1, 4);
BENCHMARK(bench_until_nest)->DenseRange(1, 5);
BENCHMARK(bench_validity_check)->DenseRange(0, 3);
BENCHMARK(bench_tableau_batch_engine)
    ->Args({8, 1})
    ->Args({8, 2})
    ->Args({8, 4})
    ->Args({16, 4});
BENCHMARK(bench_tableau_batch_engine_warm)->Args({8, 1})->Args({16, 4});

BENCHMARK_MAIN();
