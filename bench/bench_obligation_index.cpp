// E14 — interval-indexed epoch invalidation: steady-state append cost of
// the stabbing-query obligation graph against the legacy reverse walk, as
// the resident trace (and with it the obligation population) grows.
//
//   bench_obligation_index_append     indexed invalidation, one append+verdict
//                                     at steady state, trace lengths 1e2..1e5
//   bench_obligation_reverse_walk     the same workload with
//                                     Invalidation::ReverseWalk (the pre-index
//                                     pass that touches every open record's
//                                     reverse closure per epoch)
//   bench_obligation_event_search     long-trace relocating event search: the
//                                     incremental frontier resume against the
//                                     legacy full re-scan of [lo, horizon]
//
// CI asserts from the emitted JSON that the indexed append time stays flat
// (<= 1.25x from 1e3 to 1e5), beats the reverse walk >= 5x at 1e5, and that
// the per-epoch seed count (obligation_touched on the indexed 2e4 case)
// stays far below the entry count an unindexed graph carries for the same
// stream (obligation_entries on the reverse-walk cases, which reclaim
// nothing) — while the indexed graph's own resident count stays tiny.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>

#include "core/ast.h"
#include "core/check.h"
#include "core/monitor.h"

namespace {

using namespace il;

/// The steady-state workload: an interval whose start is an open forward
/// event search ([]q relocates on every !q pulse) and whose body <>r stays
/// open forever.  The open suffix is bounded by the pulse period no matter
/// how long the trace grows, so a flat-per-append invalidation pass shows
/// up as flat wall time across trace lengths.
Spec index_spec() {
  Spec spec;
  spec.name = "steady";
  spec.axioms.push_back(
      {"tail", f::interval(t::fwd(t::event(f::always(f::atom("q"))), nullptr),
                           f::eventually(f::atom("r")))});
  return spec;
}

State pulse_state(std::size_t k) {
  State s;
  s.set_bool("q", k % 64 != 63);
  s.set_bool("r", false);
  return s;
}

/// Builds the untimed prefix that puts `m` at steady state at trace length
/// `n`.  The indexed arm appends with a verdict per state — its per-append
/// cost is flat, so the prefix is O(n) total, and the epoch-by-epoch path
/// keeps the record pool tiny (superseded and settled-child records are
/// freed as it goes and their slots reused).  The reverse-walk arm would
/// pay O(n^2) for the same prefix (each epoch touches the whole open
/// population), so it observes the states and pays the one cold verdict
/// that expands the graph in a single pass instead — from there both arms
/// sit at their own steady state and the timed appends measure it.
std::size_t build_prefix(Monitor& m, std::size_t n, ObligationGraph::Invalidation mode,
                         State (*make)(std::size_t)) {
  std::size_t k = 0;
  if (mode == ObligationGraph::Invalidation::Indexed) {
    for (; k < n; ++k) m.append(make(k));
  } else {
    for (; k < n; ++k) m.observe(make(k));
    benchmark::DoNotOptimize(m.current());
  }
  return k;
}

/// One append+verdict at steady state at trace length N.  The timed region
/// is a fixed block of appends so per-append cost reads off
/// items_per_second.  The iteration count is pinned (and the trace
/// pre-reserved) so every iteration runs at the same trace length
/// regardless of timer resolution.
void steady_state_append(benchmark::State& state, ObligationGraph::Invalidation mode) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kBlock = 16;
  const Spec spec = index_spec();
  Monitor m(spec);
  m.set_invalidation(mode);
  m.set_gc_fraction(0.0);  // measure the invalidation pass, not the sweeper
  m.reserve(n + kBlock * (state.max_iterations + 1));
  std::size_t k = build_prefix(m, n, mode, pulse_state);
  std::size_t failed = 0;
  for (auto _ : state) {
    for (std::size_t j = 0; j < kBlock; ++j, ++k) {
      failed += m.append(pulse_state(k)).failed.size();
    }
    benchmark::DoNotOptimize(failed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kBlock));
  const ObligationGraph& g = m.obligations();
  state.counters["obligation_entries"] = static_cast<double>(g.size());
  if (g.index_stabs() > 0) {
    state.counters["obligation_touched"] =
        static_cast<double>(g.touched_total()) / static_cast<double>(g.index_stabs());
  }
}

void bench_obligation_index_append(benchmark::State& state) {
  steady_state_append(state, ObligationGraph::Invalidation::Indexed);
}

void bench_obligation_reverse_walk(benchmark::State& state) {
  steady_state_append(state, ObligationGraph::Invalidation::ReverseWalk);
}

/// Long-trace *backward* event search (the fwd path is what
/// steady_state_append exercises): a suffix-sensitive `<-` search never
/// settles, so the legacy path re-scans the whole open region every epoch
/// while the indexed path extends its settled prefix bottom-up and
/// re-scans only above it.  The first verdict at trace length N pays the
/// whole scan either way; the timed region is the appends after it.
Spec bwd_spec() {
  Spec spec;
  spec.name = "bwd";
  spec.axioms.push_back(
      {"latest", f::interval(t::bwd(t::event(f::always(f::atom("q"))), nullptr),
                             f::eventually(f::atom("r")))});
  return spec;
}

void event_search_tail(benchmark::State& state, ObligationGraph::Invalidation mode) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kBlock = 16;
  const Spec spec = bwd_spec();
  Monitor m(spec);
  m.set_invalidation(mode);
  m.set_gc_fraction(0.0);
  m.reserve(n + kBlock * (state.max_iterations + 1));
  std::size_t k = build_prefix(m, n, mode, pulse_state);
  std::size_t failed = 0;
  for (auto _ : state) {
    for (std::size_t j = 0; j < kBlock; ++j, ++k) {
      failed += m.append(pulse_state(k)).failed.size();
    }
    benchmark::DoNotOptimize(failed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kBlock));
}

void bench_obligation_event_search(benchmark::State& state) {
  event_search_tail(state, ObligationGraph::Invalidation::Indexed);
}

void bench_obligation_event_search_rescan(benchmark::State& state) {
  event_search_tail(state, ObligationGraph::Invalidation::ReverseWalk);
}

}  // namespace

// Pinned iteration counts keep every timed append at the intended trace
// length (see steady_state_append); the legacy walk gets fewer iterations
// because each one is O(trace) at the top end.
BENCHMARK(bench_obligation_index_append)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(20000)
    ->Arg(100000)
    ->Iterations(1024)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(bench_obligation_reverse_walk)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Iterations(64)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(bench_obligation_event_search)->Arg(20000)->Iterations(256)->Unit(benchmark::kMicrosecond);
BENCHMARK(bench_obligation_event_search_rescan)
    ->Arg(20000)
    ->Iterations(64)
    ->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
