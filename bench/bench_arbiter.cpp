// E4 — Chapter 6: self-timed protocol and arbiter simulation plus
// specification checking.
#include <benchmark/benchmark.h>

#include "core/check.h"
#include "systems/arbiter.h"
#include "systems/selftimed.h"

namespace {

using namespace il;
using namespace il::sys;

void bench_request_ack(benchmark::State& state) {
  SelfTimedRunConfig config;
  config.handshakes = static_cast<std::size_t>(state.range(0));
  Spec spec = request_ack_spec();
  std::size_t len = 0;
  for (auto _ : state) {
    config.seed++;
    Trace tr = run_request_ack(config);
    auto r = check_spec(spec, tr);
    len = tr.size();
    benchmark::DoNotOptimize(r);
  }
  state.counters["trace_len"] = static_cast<double>(len);
}

void bench_arbiter_simulate(benchmark::State& state) {
  ArbiterRunConfig config;
  config.grants = static_cast<std::size_t>(state.range(0));
  std::size_t len = 0;
  for (auto _ : state) {
    config.seed++;
    Trace tr = run_arbiter(config);
    len = tr.size();
    benchmark::DoNotOptimize(tr);
  }
  state.counters["trace_len"] = static_cast<double>(len);
}

void bench_arbiter_check(benchmark::State& state) {
  ArbiterRunConfig config;
  config.grants = static_cast<std::size_t>(state.range(0));
  Trace tr = run_arbiter(config);
  Spec spec = arbiter_spec();
  auto mutex = arbiter_mutual_exclusion();
  for (auto _ : state) {
    auto r = check_spec(spec, tr);
    bool ok = check(mutex, tr);
    benchmark::DoNotOptimize(r);
    benchmark::DoNotOptimize(ok);
  }
  state.counters["trace_len"] = static_cast<double>(tr.size());
}

}  // namespace

BENCHMARK(bench_request_ack)->Arg(4)->Arg(8)->Arg(16);
BENCHMARK(bench_arbiter_simulate)->Arg(4)->Arg(8);
BENCHMARK(bench_arbiter_check)->Arg(4)->Arg(8);

BENCHMARK_MAIN();
