// E6 — Chapter 8: distributed mutual exclusion: simulation/checking cost as
// the process count grows, and the bounded-exhaustive entailment check that
// renders the Figure 8-2 proof.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/check.h"
#include "engine/engine.h"
#include "systems/mutex.h"

namespace {

using namespace il;
using namespace il::sys;

void bench_mutex_simulate(benchmark::State& state) {
  MutexRunConfig config;
  config.processes = static_cast<std::size_t>(state.range(0));
  std::size_t len = 0;
  for (auto _ : state) {
    config.seed++;
    Trace tr = run_mutex(config);
    len = tr.size();
    benchmark::DoNotOptimize(tr);
  }
  state.counters["trace_len"] = static_cast<double>(len);
}

void bench_mutex_check(benchmark::State& state) {
  MutexRunConfig config;
  config.processes = static_cast<std::size_t>(state.range(0));
  Trace tr = run_mutex(config);
  Spec spec = mutex_spec(config.processes);
  auto theorem = mutex_theorem(config.processes);
  for (auto _ : state) {
    auto r = check_spec(spec, tr);
    bool ok = check(theorem, tr);
    benchmark::DoNotOptimize(r);
    benchmark::DoNotOptimize(ok);
  }
  state.counters["axioms"] = static_cast<double>(spec.all().size());
}

void bench_mutex_entailment(benchmark::State& state) {
  const std::size_t len = static_cast<std::size_t>(state.range(0));
  std::size_t traces = 0;
  for (auto _ : state) {
    auto r = check_mutex_entailment_bounded(len);
    traces = r.traces_checked;
    benchmark::DoNotOptimize(r);
  }
  state.counters["traces"] = static_cast<double>(traces);
}

// Fleet checking through the batch engine: many interleavings of the same
// algorithm, all checked against Figure 8-1.  range(0) = processes,
// range(1) = threads.
void bench_mutex_batch_engine(benchmark::State& state) {
  MutexRunConfig config;
  config.processes = static_cast<std::size_t>(state.range(0));
  Spec spec = mutex_spec(config.processes);
  std::vector<Trace> traces;
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    config.seed = seed;
    traces.push_back(run_mutex(config));
  }
  auto jobs = engine::jobs_for_traces(spec, traces);
  engine::Options opts;
  opts.num_threads = static_cast<std::size_t>(state.range(1));
  engine::BatchChecker checker(opts);
  for (auto _ : state) {
    auto r = checker.run(jobs);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * traces.size()));
  state.counters["axioms"] = static_cast<double>(spec.all().size());
}

}  // namespace

BENCHMARK(bench_mutex_simulate)->Arg(2)->Arg(3)->Arg(5);
BENCHMARK(bench_mutex_check)->Arg(2)->Arg(3)->Arg(5);
BENCHMARK(bench_mutex_entailment)->Arg(2)->Arg(3);
BENCHMARK(bench_mutex_batch_engine)->Args({3, 1})->Args({3, 2})->Args({3, 4});

BENCHMARK_MAIN();
