// E13 — incremental monitoring: the append-delta pass against the scratch
// per-state recheck, on the bench_monitor_full_run workload shape (a mutex
// run streamed state by state with a verdict after every state).
//
//   bench_monitor_append_full_run    incremental monitor, verdict per state
//   bench_monitor_scratch_full_run   scratch monitor, verdict per state
//                                    (the pre-incremental evaluation path)
//   bench_monitor_append_warm        steady-state cost of ONE append+verdict
//                                    on a monitor that has verdicted all
//                                    along (the delta is the live suffix)
//   bench_monitor_append_cold        first-ever verdict at the same prefix
//                                    (builds the whole obligation graph)
//
// CI asserts append_full_run < scratch_full_run from the emitted JSON: the
// obligation graph must beat re-evaluation or it has no reason to exist.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstddef>

#include "core/monitor.h"
#include "core/parser.h"
#include "systems/mutex.h"

namespace {

using namespace il;

Spec monitored_spec() {
  Spec spec;
  spec.name = "monitored";
  spec.axioms.push_back({"safety", parse_formula("[] (cs1 -> x1)")});
  spec.axioms.push_back({"scan", parse_formula("[] [ x1 <= cs1 ] <> !x2")});
  return spec;
}

Trace mutex_run(std::size_t entries) {
  sys::MutexRunConfig config;
  config.entries = entries;
  return sys::run_mutex(config);
}

/// Streams the whole run with a verdict per state through one monitor mode.
void stream_full_run(benchmark::State& state, Monitor::Mode mode) {
  const Trace tr = mutex_run(static_cast<std::size_t>(state.range(0)));
  const Spec spec = monitored_spec();
  std::size_t failed = 0;
  for (auto _ : state) {
    Monitor m(spec, {}, mode);
    for (const State& s : tr.states()) failed += m.append(s).failed.size();
    benchmark::DoNotOptimize(failed);
  }
  state.counters["states"] = static_cast<double>(tr.size());
}

void bench_monitor_append_full_run(benchmark::State& state) {
  stream_full_run(state, Monitor::Mode::Incremental);
}

void bench_monitor_scratch_full_run(benchmark::State& state) {
  stream_full_run(state, Monitor::Mode::Scratch);
}

/// Steady state: the monitor has verdicted after every prefix state; timed
/// region is the next 64 appends (a block, so the per-append delta cost is
/// read from items_per_second without drowning in pause/resume overhead).
void bench_monitor_append_warm(benchmark::State& state) {
  const std::size_t prefix = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kBlock = 64;
  sys::MutexRunConfig config;
  config.entries = prefix + kBlock;  // keep the stream active throughout
  config.max_steps = prefix + kBlock;
  const Trace tr = sys::run_mutex(config);
  const Spec spec = monitored_spec();
  const std::size_t n = std::min(prefix, tr.size() - 1);
  std::size_t failed = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Monitor m(spec);
    for (std::size_t k = 0; k < n; ++k) m.append(tr.at(k));
    state.ResumeTiming();
    for (std::size_t j = 0; j < kBlock; ++j) failed += m.append(tr.at(n + j)).failed.size();
    benchmark::DoNotOptimize(failed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kBlock));
}

/// Cold: same prefix observed but never verdicted; timed region is the
/// first current(), which expands the whole obligation graph at once.
void bench_monitor_append_cold(benchmark::State& state) {
  const std::size_t prefix = static_cast<std::size_t>(state.range(0));
  sys::MutexRunConfig config;
  config.entries = prefix;
  config.max_steps = prefix + 50;
  const Trace tr = sys::run_mutex(config);
  const Spec spec = monitored_spec();
  const std::size_t n = std::min(prefix, tr.size() - 1);
  for (auto _ : state) {
    state.PauseTiming();
    Monitor m(spec);
    for (std::size_t k = 0; k <= n; ++k) m.observe(tr.at(k));
    state.ResumeTiming();
    auto r = m.current();
    benchmark::DoNotOptimize(r);
  }
}

}  // namespace

BENCHMARK(bench_monitor_append_full_run)->Arg(4)->Arg(8)->Arg(16);
BENCHMARK(bench_monitor_scratch_full_run)->Arg(4)->Arg(8)->Arg(16);
// The mutex simulation's first critical-section entry lands around state
// ~170 and entries recur every ~80 states, so the spec's live suffix (the
// open obligations an append must recheck) is a window of roughly that
// size: the warm per-append cost grows until the first entry and then
// flattens, while the cold first-verdict cost keeps growing with the
// prefix it must expand.
BENCHMARK(bench_monitor_append_warm)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(bench_monitor_append_cold)->Arg(64)->Arg(256)->Arg(1024);

BENCHMARK_MAIN();
