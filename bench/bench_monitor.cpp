// E12 — runtime-monitor overhead: cost of observing a state and
// re-evaluating a specification online, versus trace length; plus offline
// batch throughput of the same specification through the engine.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/monitor.h"
#include "core/parser.h"
#include "engine/engine.h"
#include "systems/mutex.h"

namespace {

using namespace il;

Spec monitored_spec() {
  Spec spec;
  spec.name = "monitored";
  spec.axioms.push_back({"safety", parse_formula("[] (cs1 -> x1)")});
  spec.axioms.push_back({"scan", parse_formula("[] [ x1 <= cs1 ] <> !x2")});
  return spec;
}

// Both cases below compute ONE verdict over an already-observed trace — the
// one-shot shape, where scratch evaluation is the right mode (and the
// historical baseline).  The incremental monitor's own shapes — a verdict
// after every state, warm and cold — live in bench_monitor_incremental.cpp.
void bench_monitor_per_state(benchmark::State& state) {
  const std::size_t prefix = static_cast<std::size_t>(state.range(0));
  sys::MutexRunConfig config;
  config.entries = 20;
  config.max_steps = prefix + 50;
  Trace tr = sys::run_mutex(config);
  for (auto _ : state) {
    state.PauseTiming();
    Monitor m(monitored_spec(), {}, Monitor::Mode::Scratch);
    for (std::size_t k = 0; k < std::min(prefix, tr.size()); ++k) m.observe(tr.at(k));
    state.ResumeTiming();
    m.observe(tr.at(std::min(prefix, tr.size() - 1)));
    auto r = m.current();
    benchmark::DoNotOptimize(r);
  }
}

void bench_monitor_full_run(benchmark::State& state) {
  sys::MutexRunConfig config;
  config.entries = static_cast<std::size_t>(state.range(0));
  Trace tr = sys::run_mutex(config);
  for (auto _ : state) {
    Monitor m(monitored_spec(), {}, Monitor::Mode::Scratch);
    bool final_ok = true;
    for (std::size_t k = 0; k < tr.size(); ++k) {
      m.observe(tr.at(k));
    }
    final_ok = m.current().ok;
    benchmark::DoNotOptimize(final_ok);
  }
  state.counters["states"] = static_cast<double>(tr.size());
}

// Offline throughput: the batch engine checking the monitored spec against
// a fleet of recorded runs.  range(0) = fleet size, range(1) = threads.
void bench_monitor_batch_engine(benchmark::State& state) {
  const std::size_t fleet = static_cast<std::size_t>(state.range(0));
  Spec spec = monitored_spec();
  std::vector<Trace> traces;
  traces.reserve(fleet);
  for (std::size_t i = 0; i < fleet; ++i) {
    sys::MutexRunConfig config;
    config.seed = i + 1;
    config.entries = 8;
    traces.push_back(sys::run_mutex(config));
  }
  auto jobs = engine::jobs_for_traces(spec, traces);
  engine::Options opts;
  opts.num_threads = static_cast<std::size_t>(state.range(1));
  engine::BatchChecker checker(opts);
  std::size_t violations = 0;
  for (auto _ : state) {
    auto results = checker.run(jobs);
    violations = checker.check_stats().axioms_failed;
    benchmark::DoNotOptimize(results);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * fleet));
  state.counters["traces"] = static_cast<double>(fleet);
  state.counters["violations"] = static_cast<double>(violations);
  const auto& s = checker.check_stats();
  state.counters["memo_hit_rate"] =
      s.memo_hits + s.memo_misses == 0
          ? 0.0
          : static_cast<double>(s.memo_hits) / static_cast<double>(s.memo_hits + s.memo_misses);
}

}  // namespace

BENCHMARK(bench_monitor_per_state)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(bench_monitor_full_run)->Arg(4)->Arg(8);
BENCHMARK(bench_monitor_batch_engine)
    ->Args({16, 1})
    ->Args({16, 2})
    ->Args({16, 4})
    ->Args({64, 4});

BENCHMARK_MAIN();
