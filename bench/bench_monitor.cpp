// E12 — runtime-monitor overhead: cost of observing a state and
// re-evaluating a specification online, versus trace length.
#include <benchmark/benchmark.h>

#include "core/monitor.h"
#include "core/parser.h"
#include "systems/mutex.h"

namespace {

using namespace il;

Spec monitored_spec() {
  Spec spec;
  spec.name = "monitored";
  spec.axioms.push_back({"safety", parse_formula("[] (cs1 -> x1)")});
  spec.axioms.push_back({"scan", parse_formula("[] [ x1 <= cs1 ] <> !x2")});
  return spec;
}

void bench_monitor_per_state(benchmark::State& state) {
  const std::size_t prefix = static_cast<std::size_t>(state.range(0));
  sys::MutexRunConfig config;
  config.entries = 20;
  config.max_steps = prefix + 50;
  Trace tr = sys::run_mutex(config);
  for (auto _ : state) {
    state.PauseTiming();
    Monitor m(monitored_spec());
    for (std::size_t k = 0; k < std::min(prefix, tr.size()); ++k) m.observe(tr.at(k));
    state.ResumeTiming();
    m.observe(tr.at(std::min(prefix, tr.size() - 1)));
    auto r = m.current();
    benchmark::DoNotOptimize(r);
  }
}

void bench_monitor_full_run(benchmark::State& state) {
  sys::MutexRunConfig config;
  config.entries = static_cast<std::size_t>(state.range(0));
  Trace tr = sys::run_mutex(config);
  for (auto _ : state) {
    Monitor m(monitored_spec());
    bool final_ok = true;
    for (std::size_t k = 0; k < tr.size(); ++k) {
      m.observe(tr.at(k));
    }
    final_ok = m.current().ok;
    benchmark::DoNotOptimize(final_ok);
  }
  state.counters["states"] = static_cast<double>(tr.size());
}

}  // namespace

BENCHMARK(bench_monitor_per_state)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(bench_monitor_full_run)->Arg(4)->Arg(8);

BENCHMARK_MAIN();
