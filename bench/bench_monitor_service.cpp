// E14 — monitoring as a service: what the resident parked pool buys over
// the spawn-per-feed fan-out it replaced, and how a resident fleet scales.
//
//   bench_service_feed_parked/T   per-state fleet epoch through a ParkedPool
//                                 of T workers (the BatchMonitor/
//                                 MonitorService path: wake + drain)
//   bench_service_feed_spawn/T    the pre-service reference: the same epoch
//                                 through run_claimed(), spawning and
//                                 joining T threads for every state
//   bench_service_resident_fleet/N
//                                 one appended state through a MonitorService
//                                 with N resident monitors (10^2..10^4),
//                                 including verdict-row assembly and drain
//   bench_service_batch_ingest/N/B
//                                 a 32-state burst through a resident fleet
//                                 of N monitors (10^2..10^4) with
//                                 max_epoch_batch = B; B=1 is strict
//                                 per-state epochs, B=32 folds the whole
//                                 burst into one multi-state epoch.  The
//                                 queue is loaded while paused so the block
//                                 shape is deterministic, not a race.
//
// CI asserts feed_parked < feed_spawn at 4 threads, and batched (B=32)
// >= per-state (B=1) states/s at every fleet size, from the emitted JSON:
// parking the workers is the reason the service can afford an epoch per
// state, and batching is the reason a state costs less than an epoch.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <functional>
#include <vector>

#include "core/monitor.h"
#include "core/parser.h"
#include "engine/pool.h"
#include "engine/service.h"
#include "systems/mutex.h"

namespace {

using namespace il;

Spec monitored_spec() {
  Spec spec;
  spec.name = "monitored";
  spec.axioms.push_back({"safety", parse_formula("[] (cs1 -> x1)")});
  spec.axioms.push_back({"scan", parse_formula("[] [ x1 <= cs1 ] <> !x2")});
  return spec;
}

Trace mutex_run(std::size_t entries) {
  sys::MutexRunConfig config;
  config.entries = entries;
  return sys::run_mutex(config);
}

constexpr std::size_t kFleet = 16;   ///< monitors per feed benchmark
constexpr std::size_t kBlock = 32;   ///< timed states per iteration

/// The feed benchmarks monitor one cheap safety axiom: the point is the
/// fan-out cost per state (wake + drain vs spawn + join), so the per-monitor
/// append must be small enough not to drown it.
Spec feed_spec() {
  Spec spec;
  spec.name = "feed";
  spec.axioms.push_back({"safety", parse_formula("[] (cs1 -> x1)")});
  return spec;
}

/// Feeds kBlock states to a fresh fleet, one epoch per state, fanned out by
/// `epoch(count, body)`.  The fleet build is untimed; the timed region is
/// exactly the per-state epochs, so items_per_second is states/s.
template <typename Epoch>
void feed_blocks(benchmark::State& state, Epoch&& epoch) {
  const Spec spec = feed_spec();
  const Trace tr = mutex_run(8);
  std::size_t failed = 0;
  std::vector<std::size_t> slots(kFleet);  ///< per-monitor, so workers never share
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<Monitor> fleet;
    fleet.reserve(kFleet);
    for (std::size_t i = 0; i < kFleet; ++i) fleet.emplace_back(spec);
    state.ResumeTiming();
    for (std::size_t j = 0; j < kBlock; ++j) {
      const State& s = tr.at(j);
      epoch(fleet.size(), [&](std::size_t i) { slots[i] = fleet[i].append(s).failed.size(); });
      for (const std::size_t f : slots) failed += f;
    }
    benchmark::DoNotOptimize(failed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kBlock));
  state.counters["monitors"] = static_cast<double>(kFleet);
}

void bench_service_feed_parked(benchmark::State& state) {
  engine::detail::ParkedPool pool(static_cast<std::size_t>(state.range(0)));
  feed_blocks(state, [&](std::size_t count, const std::function<void(std::size_t)>& body) {
    pool.run(count, body);
  });
}

void bench_service_feed_spawn(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  feed_blocks(state, [&](std::size_t count, const std::function<void(std::size_t)>& body) {
    engine::detail::run_claimed(
        count, threads, [](std::size_t) { return 0; },
        [&](int&, std::size_t i) { body(i); }, [](int&, std::size_t) {});
  });
}

/// One state through a resident service with N monitors: epoch fan-out over
/// the dirty shards, verdict-row assembly, and the caller's drain.
void bench_service_resident_fleet(benchmark::State& state) {
  const std::size_t monitors = static_cast<std::size_t>(state.range(0));
  const Spec spec = monitored_spec();
  const Trace tr = mutex_run(8);
  engine::Options options;
  options.num_threads = 4;
  options.queue_capacity = 64;
  engine::MonitorService service(options);
  for (std::size_t i = 0; i < monitors; ++i) service.register_spec(spec);
  service.flush();
  std::size_t k = 0;
  std::size_t rows = 0;
  for (auto _ : state) {
    service.append(tr.at(k));
    service.flush();
    rows += service.drain().size();
    k = (k + 1) % tr.size();
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["monitors"] = static_cast<double>(monitors);
  state.counters["shards"] = static_cast<double>(service.shards());
}

/// A 32-state burst through a resident fleet at a fixed epoch-batch bound.
/// The burst is enqueued while the coordinator is paused, so the B=32 run
/// folds it into one epoch (one pool wake, one begin_epoch() walk per
/// monitor) while the B=1 run pays the full per-state epoch loop — the
/// states/s ratio is exactly what Options::max_epoch_batch buys.
void bench_service_batch_ingest(benchmark::State& state) {
  const std::size_t monitors = static_cast<std::size_t>(state.range(0));
  const std::size_t batch = static_cast<std::size_t>(state.range(1));
  const Spec spec = monitored_spec();
  const Trace tr = mutex_run(8);
  engine::Options options;
  options.num_threads = 4;
  options.max_epoch_batch = batch;
  options.queue_capacity = 2 * kBlock;
  engine::MonitorService service(options);
  for (std::size_t i = 0; i < monitors; ++i) service.register_spec(spec);
  service.flush();
  std::size_t k = 0;
  std::size_t rows = 0;
  for (auto _ : state) {
    service.pause();
    for (std::size_t j = 0; j < kBlock; ++j) {
      service.append(tr.at(k));
      k = (k + 1) % tr.size();
    }
    service.resume();
    service.flush();
    rows += service.drain().size();
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kBlock));
  state.counters["monitors"] = static_cast<double>(monitors);
  state.counters["batch"] = static_cast<double>(batch);
  state.counters["batch_max"] = static_cast<double>(service.stats().states_per_batch_max);
}

}  // namespace

BENCHMARK(bench_service_feed_parked)->Arg(2)->Arg(4);
BENCHMARK(bench_service_feed_spawn)->Arg(2)->Arg(4);
BENCHMARK(bench_service_resident_fleet)->Arg(100)->Arg(1000)->Arg(10000);
BENCHMARK(bench_service_batch_ingest)
    ->Args({100, 1})
    ->Args({100, 32})
    ->Args({1000, 1})
    ->Args({1000, 32})
    ->Args({10000, 1})
    ->Args({10000, 32});

BENCHMARK_MAIN();
