// E10 — the cross-batch DecisionCache (engine/decision.h): cold versus warm
// batch wall time over one regression-shaped corpus of tableau and LLL
// decision jobs.
//
// A cold batch decides every distinct job; a warm batch — the same decider,
// cache populated by a previous run — answers every job from the
// (formula id, job kind) -> result memo on the calling thread without
// spawning any work.  The hit_rate counter reports the warm run's cache hit
// fraction, and CI asserts warm < cold from the emitted JSON (the cache is
// only worth shipping if a repeated corpus is measurably free).
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "engine/decision.h"
#include "lll/encode.h"
#include "ltl/formula.h"

namespace {

/// A mixed regression corpus: tableau satisfiability, tableau validity, and
/// the LLL encodings of the satisfiability half.
std::vector<il::engine::DecisionJob> corpus(il::ltl::Arena& arena) {
  const std::vector<std::string> sat_texts = {
      "[]p",         "<>p /\\ []!p",      "SU(p, q) /\\ []!q", "U(p, q) /\\ []!q",
      "[](p -> <>q)", "o o p /\\ []!p",   "<>[]p",             "[]p \\/ []!p",
  };
  const std::vector<std::string> valid_texts = {
      "[]p -> p", "(<>[]p) -> ([]<>p)", "SU(p,q) -> <>q", "!(<>p) <-> []!p",
  };
  std::vector<il::engine::DecisionJob> jobs;
  for (const auto& s : sat_texts) {
    const il::ltl::Id f = arena.parse(s);
    jobs.push_back(il::engine::tableau_sat_job(arena, f));
    jobs.push_back(il::engine::lll_sat_job(il::lll::encode_ltl(arena, arena.nnf(f))));
  }
  for (const auto& s : valid_texts) {
    jobs.push_back(il::engine::tableau_valid_job(arena, arena.parse(s)));
  }
  return jobs;
}

/// Every iteration constructs a fresh BatchDecider: an empty cache, so the
/// whole corpus is decided from scratch — the cost a regression sweep pays
/// without the cache.
void bench_decision_batch_cold(benchmark::State& state) {
  il::ltl::Arena arena;
  const auto jobs = corpus(arena);
  il::engine::Options options;
  options.num_threads = static_cast<std::size_t>(state.range(0));
  double hit_rate = 0;
  for (auto _ : state) {
    il::engine::BatchDecider decider(options);
    auto results = decider.run(jobs);
    hit_rate = static_cast<double>(decider.stats().decision_hits) /
               static_cast<double>(decider.stats().jobs);
    benchmark::DoNotOptimize(results);
  }
  state.counters["jobs"] = static_cast<double>(jobs.size());
  state.counters["hit_rate"] = hit_rate;
}

/// One BatchDecider survives across iterations, warmed by a pre-loop run:
/// every timed batch is pure cache hits.
void bench_decision_batch_warm(benchmark::State& state) {
  il::ltl::Arena arena;
  const auto jobs = corpus(arena);
  il::engine::Options options;
  options.num_threads = static_cast<std::size_t>(state.range(0));
  il::engine::BatchDecider decider(options);
  {
    auto warmup = decider.run(jobs);
    benchmark::DoNotOptimize(warmup);
  }
  double hit_rate = 0;
  for (auto _ : state) {
    auto results = decider.run(jobs);
    hit_rate = static_cast<double>(decider.stats().decision_hits) /
               static_cast<double>(decider.stats().jobs);
    benchmark::DoNotOptimize(results);
  }
  state.counters["jobs"] = static_cast<double>(jobs.size());
  state.counters["hit_rate"] = hit_rate;
}

}  // namespace

BENCHMARK(bench_decision_batch_cold)->Arg(1)->Arg(2);
BENCHMARK(bench_decision_batch_warm)->Arg(1)->Arg(2);

BENCHMARK_MAIN();
