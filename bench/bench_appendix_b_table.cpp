// E1 — Appendix B Section 6 table.
//
// The paper's only measured artifact: Plaisted's Interlisp implementation of
// Algorithm B run on the formulas R3, R4, R5 (all valid in pure temporal
// logic), reporting graph construction time, iteration time, and graph
// size.  The paper's numbers (F2 computer, Interlisp, 1983):
//
//           Construction(s)  Iteration(s)  Nodes  Edges
//     R3         67              14          13    108
//     R4        105              22          16    166
//     R5         13.8             5           8     34
//
// We regenerate the same rows from our C++ tableau + Algorithm B.  Absolute
// times are incomparable across four decades of hardware; the *shape* to
// check is: R5 is by far the smallest/fastest, R4 the largest/slowest, and
// construction dominates iteration.  Node/edge counts depend on the tableau
// normalization, so ours differ in absolute value but must preserve the
// R5 < R3 < R4 ordering.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "ltl/tableau.h"
#include "theory/combined.h"

namespace {

std::string LU(const std::string& p, const std::string& q) {
  return "U(!(" + p + "), U((" + p + ") /\\ !(" + q + "), " + q + "))";
}
std::string LUA(const std::string& p, const std::string& q) {
  return LU(p, "(" + p + ") /\\ (" + q + ")");
}

std::string formula_text(const std::string& name) {
  if (name == "R3") {
    return "([](" + LUA("A", "X") + ")) /\\ ([](" + LUA("A", "Y") + ")) -> ([](" +
           LUA("A", "X /\\ Y") + "))";
  }
  if (name == "R4") {
    return "([](" + LUA("A", "B /\\ C") + ")) /\\ ([](" + LUA("B", "A /\\ !C") +
           ")) -> ([](" + LUA("A \\/ B", "false") + "))";
  }
  return "(" + LUA("A", "B") + ") /\\ (" + LUA("B", "C") + ") -> (" + LUA("A \\/ B", "C") +
         ")";  // R5
}

void bench_graph_construction(benchmark::State& state, const std::string& name) {
  const std::string text = formula_text(name);
  std::size_t nodes = 0, edges = 0;
  for (auto _ : state) {
    il::ltl::Arena arena;
    il::ltl::Id f = arena.parse(text);
    il::ltl::Tableau tableau(arena, arena.nnf(arena.mk_not(f)));
    nodes = tableau.node_count();
    edges = tableau.edge_count();
    benchmark::DoNotOptimize(tableau);
  }
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["edges"] = static_cast<double>(edges);
}

void bench_algorithm_b(benchmark::State& state, const std::string& name) {
  const std::string text = formula_text(name);
  bool valid = false;
  std::size_t cubes = 0;
  for (auto _ : state) {
    il::ltl::Arena arena;
    il::ltl::Id f = arena.parse(text);
    il::theory::PropositionalOracle oracle;
    auto r = il::theory::algorithm_b_valid(arena, f, oracle);
    valid = r.valid;
    cubes = r.condition_cubes;
    benchmark::DoNotOptimize(r);
  }
  state.counters["valid"] = valid ? 1 : 0;
  state.counters["condition_cubes"] = static_cast<double>(cubes);
}

void bench_iteration_only(benchmark::State& state, const std::string& name) {
  const std::string text = formula_text(name);
  for (auto _ : state) {
    state.PauseTiming();
    il::ltl::Arena arena;
    il::ltl::Id f = arena.parse(text);
    il::ltl::Tableau tableau(arena, arena.nnf(arena.mk_not(f)));
    state.ResumeTiming();
    bool sat = tableau.iterate();
    benchmark::DoNotOptimize(sat);
  }
}

}  // namespace

BENCHMARK_CAPTURE(bench_graph_construction, R3, "R3");
BENCHMARK_CAPTURE(bench_graph_construction, R4, "R4");
BENCHMARK_CAPTURE(bench_graph_construction, R5, "R5");
BENCHMARK_CAPTURE(bench_iteration_only, R3, "R3");
BENCHMARK_CAPTURE(bench_iteration_only, R4, "R4");
BENCHMARK_CAPTURE(bench_iteration_only, R5, "R5");
BENCHMARK_CAPTURE(bench_algorithm_b, R3, "R3");
BENCHMARK_CAPTURE(bench_algorithm_b, R4, "R4");
BENCHMARK_CAPTURE(bench_algorithm_b, R5, "R5");

int main(int argc, char** argv) {
  // Print the regenerated Appendix B table before the timing runs.
  std::printf("Appendix B Section 6 table (regenerated)\n");
  std::printf("%-4s %-8s %-8s %-8s %-10s %-8s\n", "id", "nodes", "edges", "valid",
              "aliveN", "aliveE");
  for (const char* name : {"R3", "R4", "R5"}) {
    il::ltl::Arena arena;
    il::ltl::Id f = arena.parse(formula_text(name));
    il::ltl::Tableau tableau(arena, arena.nnf(arena.mk_not(f)));
    const std::size_t nodes = tableau.node_count();
    const std::size_t edges = tableau.edge_count();
    const bool sat = tableau.iterate();  // !valid iff a model of !R survives
    std::printf("%-4s %-8zu %-8zu %-8s %-10zu %-8zu\n", name, nodes, edges,
                sat ? "no" : "yes", tableau.alive_node_count(), tableau.alive_edge_count());
  }
  std::printf("(paper, Interlisp/F2: R3 13n/108e 67s+14s; R4 16n/166e 105s+22s; "
              "R5 8n/34e 13.8s+5s)\n\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
